Dynamic-network scenarios from the shell: --scenario FILE on run and
sweep.  A scenario file is user input, so every malformed plan must
die fast with the offending field and a non-zero exit — never a
backtrace, never a deep engine failure minutes into a sweep.

Malformed JSON:

  $ echo '{ bad' > bad.json
  $ gossip-cli run --protocol push-pull --family clique --nodes 8 --scenario bad.json
  gossip-cli: --scenario bad.json: scenario: bad JSON: expected '"' at offset 2
  [2]

Negative times:

  $ echo '{"churn": [{"node": 2, "leave": -1}]}' > neg.json
  $ gossip-cli run --protocol push-pull --family clique --nodes 8 --scenario neg.json
  gossip-cli: --scenario neg.json: churn[0].leave: must be >= 0 (got -1)
  [2]

Unknown kinds (sweep validates before building any job):

  $ echo '{"schedules": [{"kind": "quadratic"}]}' > unk.json
  $ gossip-cli sweep --family ring-of-cliques -n 64 --trials 1 --scenario unk.json
  gossip-cli: --scenario unk.json: schedules[0].kind: unknown schedule kind "quadratic" (want linear, diurnal, step, trace)
  [2]

A missing file:

  $ gossip-cli run --protocol push-pull --family clique --nodes 8 --scenario nope.json
  gossip-cli: --scenario nope.json: scenario: cannot read nope.json: nope.json: No such file or directory
  [2]

Churning the broadcast source is rejected at compile time — a typed
error, not a broadcast that can never complete:

  $ echo '{"churn": [{"node": 0, "leave": 2}]}' > src.json
  $ gossip-cli run --protocol push-pull --family clique --nodes 8 --scenario src.json
  gossip-cli: --scenario: scenario.churn[0]: plan churns the broadcast source (node 0); a run whose source leaves is undefined
  [2]

Scenarios ride the wheel engine; the boxed-graph algorithms refuse
them:

  $ gossip-cli run --algorithm dtg --family clique --nodes 8 --scenario src.json
  gossip-cli: --scenario applies to wheel-engine runs only (use --protocol or --algorithm wheel-PROTO)
  [2]

A well-formed plan runs deterministically.  Drift on the braided
ring's slow bridges plus a rejoining node slows push-pull relative to
the static run of the same seed:

  $ cat > drift.json <<'EOF'
  > { "name": "bridge-drift",
  >   "seed": 5,
  >   "schedules": [
  >     { "kind": "linear", "rate": 0.25, "cap": 4,
  >       "filter": { "kind": "lat-ge", "latency": 5 } } ],
  >   "churn": [ { "node": 9, "leave": 6, "rejoin": 14 } ] }
  > EOF
  $ gossip-cli run --protocol push-pull --family braided-ring --cliques 8 --size 8 --bridges 3 --bridge 5 --seed 7 | sed -E 's/ in [0-9.]+s//'
  wheel push-pull (domains=1): 23 rounds on 64 nodes
  initiations: 1472, deliveries: 2794
  $ gossip-cli run --protocol push-pull --family braided-ring --cliques 8 --size 8 --bridges 3 --bridge 5 --seed 7 --scenario drift.json | sed -E 's/ in [0-9.]+s//'
  wheel push-pull (domains=1): 24 rounds on 64 nodes
  initiations: 1528, deliveries: 2852

The same scenario file drives a multicore sweep (deterministic per
job regardless of the worker count):

  $ gossip-cli sweep --family braided-ring -n 128 --size 8 --bridges 3 --bridge 5 --trials 3 --jobs 2 --seed 7 --scenario drift.json
  braided-ring n=128 push-pull: 3/3 trials completed
    rounds: mean 56.0, median 53.0, min 52, max 63 over 3 runs
