(* Tests for the Trace time-series module and the random-contact local
   broadcast baseline. *)

module Trace = Gossip_sim.Trace
module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Random_local = Gossip_core.Random_local
module Rumor = Gossip_core.Rumor
module Bitset = Gossip_util.Bitset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_record_dedup () =
  let t = Trace.create ~name:"x" in
  Trace.record t ~round:0 1.0;
  Trace.record t ~round:1 1.0;
  (* unchanged: skipped *)
  Trace.record t ~round:2 2.0;
  Trace.record t ~round:5 2.0;
  Trace.record t ~round:7 3.0;
  checki "compact" 3 (Trace.length t);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
    "samples" [ (0, 1.0); (2, 2.0); (7, 3.0) ] (Trace.samples t)

let test_trace_monotone_rounds () =
  let t = Trace.create ~name:"x" in
  Trace.record t ~round:5 1.0;
  Alcotest.check_raises "backwards" (Invalid_argument "Trace.record: rounds must be non-decreasing")
    (fun () -> Trace.record t ~round:4 2.0)

let test_trace_last () =
  let t = Trace.create ~name:"x" in
  Alcotest.check
    (Alcotest.option (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
    "empty" None (Trace.last t);
  Trace.record t ~round:3 9.0;
  Alcotest.check
    (Alcotest.option (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
    "last" (Some (3, 9.0)) (Trace.last t)

let test_trace_csv_single () =
  let t = Trace.create ~name:"informed" in
  Trace.record t ~round:0 1.0;
  Trace.record t ~round:2 5.0;
  let csv = Trace.to_csv [ t ] in
  Alcotest.check Alcotest.string "csv" "round,informed\n0,1\n2,5\n" csv

let test_trace_csv_aligned () =
  let a = Trace.create ~name:"a" and b = Trace.create ~name:"b" in
  Trace.record a ~round:0 1.0;
  Trace.record a ~round:4 2.0;
  Trace.record b ~round:2 10.0;
  let csv = Trace.to_csv [ a; b ] in
  (* Round 2: a carries 1 forward; round 0: b has no value yet. *)
  Alcotest.check Alcotest.string "csv" "round,a,b\n0,1,\n2,1,10\n4,2,10\n" csv

let test_trace_csv_union_of_rounds () =
  (* Three traces with pairwise-disjoint round sets: the output has one
     row per round in the union, in ascending order. *)
  let a = Trace.create ~name:"a"
  and b = Trace.create ~name:"b"
  and c = Trace.create ~name:"c" in
  Trace.record a ~round:1 1.0;
  Trace.record a ~round:7 2.0;
  Trace.record b ~round:3 10.0;
  Trace.record c ~round:0 100.0;
  Trace.record c ~round:5 200.0;
  Alcotest.check Alcotest.string "union rows"
    "round,a,b,c\n0,,,100\n1,1,,100\n3,1,10,100\n5,1,10,200\n7,2,10,200\n"
    (Trace.to_csv [ a; b; c ])

let test_trace_csv_single_sample () =
  (* A single-sample trace is blank before its round and carried
     forward through every later round of the union. *)
  let spike = Trace.create ~name:"spike" and base = Trace.create ~name:"base" in
  Trace.record spike ~round:4 9.0;
  Trace.record base ~round:0 1.0;
  Trace.record base ~round:2 2.0;
  Trace.record base ~round:8 3.0;
  Alcotest.check Alcotest.string "single sample"
    "round,spike,base\n0,,1\n2,,2\n4,9,2\n8,9,3\n"
    (Trace.to_csv [ spike; base ])

let test_trace_csv_empty_traces () =
  (* An empty trace contributes no rounds and an always-blank column;
     all-empty input yields just the header. *)
  let e = Trace.create ~name:"e" and a = Trace.create ~name:"a" in
  Trace.record a ~round:2 5.0;
  Alcotest.check Alcotest.string "empty column" "round,e,a\n2,,5\n"
    (Trace.to_csv [ e; a ]);
  Alcotest.check Alcotest.string "header only" "round,e\n"
    (Trace.to_csv [ Trace.create ~name:"e" ])

let test_trace_csv_dedup_carry () =
  (* record's dedup drops repeated values, so a re-recorded constant
     does not create a row; carry-forward reconstructs it at rounds
     introduced by other traces. *)
  let a = Trace.create ~name:"a" and b = Trace.create ~name:"b" in
  Trace.record a ~round:0 1.0;
  Trace.record a ~round:6 1.0;
  (* dropped: same value *)
  Trace.record b ~round:6 7.0;
  Alcotest.check Alcotest.string "dedup + carry" "round,a,b\n0,1,\n6,1,7\n"
    (Trace.to_csv [ a; b ])

let test_trace_write_csv () =
  let t = Trace.create ~name:"v" in
  Trace.record t ~round:1 3.5;
  let path = Filename.temp_file "trace" ".csv" in
  Trace.write_csv path [ t ];
  let ic = open_in path in
  let line1 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.check Alcotest.string "header" "round,v" line1

(* ------------------------------------------------------------------ *)
(* Random-contact local broadcast *)

let test_random_local_completes () =
  List.iter
    (fun (name, g) ->
      let r, ok = Random_local.local_broadcast (Rng.of_int 3) g ~max_rounds:1_000_000 in
      (match r.Random_local.rounds with
      | Some _ -> ()
      | None -> Alcotest.failf "%s capped" name);
      if not ok then Alcotest.failf "%s incomplete" name)
    [
      ("clique", Gen.clique 16);
      ("star", Gen.star 20);
      ("grid", Gen.grid 4 5);
      ("weighted er", Gen.with_latencies (Rng.of_int 1) (Gen.Uniform (1, 4))
                        (Gen.erdos_renyi_connected (Rng.of_int 1) ~n:20 ~p:0.3));
    ]

let test_random_local_respects_ell () =
  let g = Gen.dumbbell ~size:4 ~bridge_latency:9 in
  let r = Random_local.phase (Rng.of_int 5) g ~ell:1 ~max_rounds:100_000 () in
  checkb "finished" true (r.Random_local.rounds <> None);
  checkb "bridge not crossed" false (Bitset.mem r.Random_local.sets.(3) 4)

let test_random_local_accumulates () =
  let g = Gen.path 6 in
  let sets = Rumor.initial g in
  let r1 = Random_local.phase (Rng.of_int 6) g ~ell:1 ~max_rounds:100_000 ~rumors:sets () in
  checkb "phase 1 done" true (r1.Random_local.rounds <> None);
  checkb "1 hop" true (Bitset.mem sets.(0) 1);
  let r2 = Random_local.phase (Rng.of_int 7) g ~ell:1 ~max_rounds:100_000 ~rumors:sets () in
  checkb "phase 2 done" true (r2.Random_local.rounds <> None);
  checkb "2 hops after chaining" true (Bitset.mem sets.(0) 2)

let test_random_local_size_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Random_local.phase: rumor array size mismatch") (fun () ->
      ignore
        (Random_local.phase (Rng.of_int 8) (Gen.path 3) ~ell:1 ~max_rounds:10
           ~rumors:(Rumor.initial (Gen.path 4)) ()))

let prop_random_local_on_random_graphs =
  QCheck.Test.make ~name:"random-contact local broadcast completes" ~count:15
    QCheck.(pair (int_range 5 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 4)) (Gen.erdos_renyi_connected rng ~n ~p:0.35)
      in
      let _, ok = Random_local.local_broadcast (Rng.of_int (seed + 1)) g ~max_rounds:1_000_000 in
      ok)

let () =
  Alcotest.run "gossip_trace_and_baselines"
    [
      ( "trace",
        [
          Alcotest.test_case "record dedup" `Quick test_trace_record_dedup;
          Alcotest.test_case "monotone rounds" `Quick test_trace_monotone_rounds;
          Alcotest.test_case "last" `Quick test_trace_last;
          Alcotest.test_case "csv single" `Quick test_trace_csv_single;
          Alcotest.test_case "csv aligned" `Quick test_trace_csv_aligned;
          Alcotest.test_case "csv union of rounds" `Quick test_trace_csv_union_of_rounds;
          Alcotest.test_case "csv single sample" `Quick test_trace_csv_single_sample;
          Alcotest.test_case "csv empty traces" `Quick test_trace_csv_empty_traces;
          Alcotest.test_case "csv dedup carry" `Quick test_trace_csv_dedup_carry;
          Alcotest.test_case "write file" `Quick test_trace_write_csv;
        ] );
      ( "random-local",
        [
          Alcotest.test_case "completes" `Quick test_random_local_completes;
          Alcotest.test_case "respects ell" `Quick test_random_local_respects_ell;
          Alcotest.test_case "accumulates" `Quick test_random_local_accumulates;
          Alcotest.test_case "size mismatch" `Quick test_random_local_size_mismatch;
          qtest prop_random_local_on_random_graphs;
        ] );
    ]
