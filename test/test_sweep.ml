(* Tests for lib/sweep (domain pool, orchestrator) and the lib/util
   JSON emitter it serializes through. *)

module Json = Gossip_util.Json
module Pool = Gossip_sweep.Pool
module Sweep = Gossip_sweep.Sweep
module Wheel = Gossip_scale.Wheel_engine
module Engine = Gossip_sim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_scalars () =
  checks "null" "null" (Json.to_string Json.Null);
  checks "bool" "true" (Json.to_string (Json.Bool true));
  checks "int" "-42" (Json.to_string (Json.Int (-42)));
  checks "float int" "3" (Json.to_string (Json.Float 3.0));
  checks "float frac" "0.5" (Json.to_string (Json.Float 0.5));
  checks "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_string_escaping () =
  checks "plain" {|"abc"|} (Json.to_string (Json.String "abc"));
  checks "quotes" {|"a\"b"|} (Json.to_string (Json.String {|a"b|}));
  checks "backslash" {|"a\\b"|} (Json.to_string (Json.String {|a\b|}));
  checks "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  checks "control" {|"a\u0001b"|} (Json.to_string (Json.String "a\001b"))

let test_json_nesting () =
  let j =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("o", Json.Obj [ ("k", Json.Null) ]);
        ("empty", Json.List []);
      ]
  in
  checks "nested" {|{"xs":[1,2],"o":{"k":null},"empty":[]}|} (Json.to_string j)

let test_json_write () =
  let path = Filename.temp_file "sweep" ".json" in
  Json.write path (Json.Obj [ ("ok", Json.Bool true) ]);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  checks "file contents" {|{"ok":true}|} line

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order_preserved () =
  List.iter
    (fun workers ->
      let inputs = Array.init 37 (fun i -> i) in
      let out = Pool.run ~workers (fun x -> (2 * x) + 1) inputs in
      Array.iteri
        (fun i r -> checki (Printf.sprintf "w%d slot %d" workers i) ((2 * i) + 1) r)
        out)
    [ 1; 2; 4 ]

let test_pool_empty_and_clamp () =
  checki "empty" 0 (Array.length (Pool.run ~workers:4 (fun x -> x) [||]));
  (* More workers than jobs must still complete every job once. *)
  let out = Pool.run ~workers:8 (fun x -> x * x) [| 1; 2; 3 |] in
  Alcotest.check (Alcotest.array Alcotest.int) "clamped" [| 1; 4; 9 |] out

let test_pool_propagates_exception () =
  Alcotest.check_raises "first failing job wins" (Failure "job 3") (fun () ->
      ignore
        (Pool.run ~workers:2
           (fun i -> if i >= 3 then failwith (Printf.sprintf "job %d" i) else i)
           [| 0; 1; 2; 3; 4; 5 |]))

let test_pool_default_workers () =
  checkb "at least one worker" true (Pool.default_workers () >= 1)

(* ------------------------------------------------------------------ *)
(* Sweep *)

let small_jobs protocol =
  Sweep.make_jobs
    ~family:(Sweep.Ring_of_cliques { size = 6; bridge_latency = 4 })
    ~n:48 ~protocol ~trials:4 ~base_seed:1 ~max_rounds:100_000 ()

let test_sweep_runs_and_completes () =
  let outcomes = Sweep.run ~workers:2 (small_jobs Wheel.Push_pull) in
  checki "all trials" 4 (List.length outcomes);
  List.iter
    (fun o ->
      checki "actual n" 48 o.Sweep.n_actual;
      checkb "completed" true (o.Sweep.rounds <> None);
      checkb "timed" true (o.Sweep.elapsed_s >= 0.0))
    outcomes

let test_sweep_deterministic_across_workers () =
  let rounds outcomes = List.map (fun (o : Sweep.outcome) -> o.Sweep.rounds) outcomes in
  let sequential = Sweep.run ~workers:1 (small_jobs Wheel.Push_pull) in
  let parallel = Sweep.run ~workers:3 (small_jobs Wheel.Push_pull) in
  Alcotest.check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "same rounds regardless of pool size" (rounds sequential) (rounds parallel)

let test_sweep_summarize () =
  let outcomes =
    Sweep.run ~workers:2
      (small_jobs Wheel.Push_pull @ small_jobs Wheel.Flood)
  in
  match Sweep.summarize outcomes with
  | [ pp; flood ] ->
      checks "group 1 protocol" "push-pull" pp.Sweep.protocol;
      checks "group 2 protocol" "flood" flood.Sweep.protocol;
      checki "group trials" 4 pp.Sweep.trials;
      checki "group completed" 4 pp.Sweep.completed;
      (match pp.Sweep.rounds with
      | Some s -> checki "stats over 4 trials" 4 s.Gossip_util.Stats.n
      | None -> Alcotest.fail "missing stats");
      checkb "initiations accumulated" true (pp.Sweep.total_initiations > 0)
  | groups -> Alcotest.failf "expected 2 summary groups, got %d" (List.length groups)

let test_sweep_capped_run () =
  (* A one-round cap cannot finish a 48-node broadcast: the summary
     must report zero completions and no stats. *)
  let jobs =
    List.map (fun j -> { j with Sweep.max_rounds = 1 }) (small_jobs Wheel.Push_pull)
  in
  let outcomes = Sweep.run ~workers:2 jobs in
  List.iter (fun (o : Sweep.outcome) -> checkb "capped" true (o.Sweep.rounds = None)) outcomes;
  match Sweep.summarize outcomes with
  | [ s ] ->
      checki "none completed" 0 s.Sweep.completed;
      checkb "no stats" true (s.Sweep.rounds = None)
  | _ -> Alcotest.fail "expected one summary group"

let test_sweep_latency_override () =
  let jobs =
    Sweep.make_jobs
      ~family:(Sweep.Barabasi_albert { attach = 2 })
      ~n:64 ~protocol:Wheel.Push_pull ~trials:2 ~base_seed:5 ~max_rounds:100_000
      ~latency:(Gossip_graph.Gen.Uniform (2, 5))
      ()
  in
  List.iter
    (fun (o : Sweep.outcome) -> checkb "completes with latencies" true (o.Sweep.rounds <> None))
    (Sweep.run ~workers:2 jobs)

let test_sweep_json_shape () =
  let outcomes = Sweep.run ~workers:2 (small_jobs Wheel.Push_pull) in
  let s = Json.to_string (Sweep.to_json ~meta:[ ("tool", Json.String "test") ] outcomes) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "json contains %s" needle) true (contains needle))
    [
      {|"meta":{"tool":"test"}|};
      {|"results":[|};
      {|"summaries":[|};
      {|"family":{"kind":"ring-of-cliques","size":6,"bridge_latency":4}|};
      {|"protocol":"push-pull"|};
      {|"completed":4|};
    ]

let () =
  Alcotest.run "gossip_sweep"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
          Alcotest.test_case "write file" `Quick test_json_write;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "empty and clamp" `Quick test_pool_empty_and_clamp;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "default workers" `Quick test_pool_default_workers;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "runs and completes" `Quick test_sweep_runs_and_completes;
          Alcotest.test_case "deterministic across workers" `Quick
            test_sweep_deterministic_across_workers;
          Alcotest.test_case "summarize" `Quick test_sweep_summarize;
          Alcotest.test_case "capped run" `Quick test_sweep_capped_run;
          Alcotest.test_case "latency override" `Quick test_sweep_latency_override;
          Alcotest.test_case "json shape" `Quick test_sweep_json_shape;
        ] );
    ]
