(* Tests for lib/sweep (domain pool, orchestrator) and the lib/util
   JSON emitter it serializes through. *)

module Json = Gossip_util.Json
module Pool = Gossip_sweep.Pool
module Sweep = Gossip_sweep.Sweep
module Wheel = Gossip_scale.Wheel_engine
module Engine = Gossip_sim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_scalars () =
  checks "null" "null" (Json.to_string Json.Null);
  checks "bool" "true" (Json.to_string (Json.Bool true));
  checks "int" "-42" (Json.to_string (Json.Int (-42)));
  checks "float int" "3" (Json.to_string (Json.Float 3.0));
  checks "float frac" "0.5" (Json.to_string (Json.Float 0.5));
  checks "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_string_escaping () =
  checks "plain" {|"abc"|} (Json.to_string (Json.String "abc"));
  checks "quotes" {|"a\"b"|} (Json.to_string (Json.String {|a"b|}));
  checks "backslash" {|"a\\b"|} (Json.to_string (Json.String {|a\b|}));
  checks "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  checks "control" {|"a\u0001b"|} (Json.to_string (Json.String "a\001b"))

let test_json_nesting () =
  let j =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("o", Json.Obj [ ("k", Json.Null) ]);
        ("empty", Json.List []);
      ]
  in
  checks "nested" {|{"xs":[1,2],"o":{"k":null},"empty":[]}|} (Json.to_string j)

let test_json_write () =
  let path = Filename.temp_file "sweep" ".json" in
  Json.write path (Json.Obj [ ("ok", Json.Bool true) ]);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  checks "file contents" {|{"ok":true}|} line

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order_preserved () =
  List.iter
    (fun workers ->
      let inputs = Array.init 37 (fun i -> i) in
      let out = Pool.run ~workers (fun x -> (2 * x) + 1) inputs in
      Array.iteri
        (fun i r -> checki (Printf.sprintf "w%d slot %d" workers i) ((2 * i) + 1) r)
        out)
    [ 1; 2; 4 ]

let test_pool_empty_and_clamp () =
  checki "empty" 0 (Array.length (Pool.run ~workers:4 (fun x -> x) [||]));
  (* More workers than jobs must still complete every job once. *)
  let out = Pool.run ~workers:8 (fun x -> x * x) [| 1; 2; 3 |] in
  Alcotest.check (Alcotest.array Alcotest.int) "clamped" [| 1; 4; 9 |] out

let test_pool_propagates_exception () =
  Alcotest.check_raises "first failing job wins" (Failure "job 3") (fun () ->
      ignore
        (Pool.run ~workers:2
           (fun i -> if i >= 3 then failwith (Printf.sprintf "job %d" i) else i)
           [| 0; 1; 2; 3; 4; 5 |]))

let test_pool_default_workers () =
  checkb "at least one worker" true (Pool.default_workers () >= 1)

let test_pool_outcomes_capture () =
  (* A failing job never aborts the run: every other job completes and
     the failure comes back structured, with the exception and attempt
     count, in the failing job's slot. *)
  let out =
    Pool.run_outcomes ~workers:2
      (fun i -> if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i) else 10 * i)
      (Array.init 8 (fun i -> i))
  in
  Array.iteri
    (fun i r ->
      match r with
      | Pool.Ok v ->
          checkb (Printf.sprintf "slot %d ok" i) true (i mod 3 <> 0);
          checki (Printf.sprintf "slot %d value" i) (10 * i) v
      | Pool.Failed f ->
          checkb (Printf.sprintf "slot %d failed" i) true (i mod 3 = 0);
          checki (Printf.sprintf "slot %d attempts" i) 1 f.Pool.attempts;
          checks
            (Printf.sprintf "slot %d message" i)
            (Printf.sprintf "Failure(\"boom %d\")" i)
            (Pool.failure_message f))
    out

let test_pool_retry_recovers () =
  (* A flaky job that fails on its first attempt succeeds under
     ~retries:1; on_retry fires once per recovered job. *)
  let n = 6 in
  let attempts = Array.make n 0 in
  let retried = ref [] in
  let out =
    Pool.run_outcomes ~workers:1 ~retries:1
      ~on_retry:(fun i ~attempt _e -> retried := (i, attempt) :: !retried)
      (fun i ->
        attempts.(i) <- attempts.(i) + 1;
        if i mod 2 = 0 && attempts.(i) = 1 then failwith "flaky" else i)
      (Array.init n (fun i -> i))
  in
  Array.iteri
    (fun i r ->
      match r with
      | Pool.Ok v -> checki (Printf.sprintf "slot %d recovered" i) i v
      | Pool.Failed _ -> Alcotest.failf "slot %d should have recovered" i)
    out;
  checki "one retry per flaky job" 3 (List.length !retried);
  List.iter (fun (i, attempt) ->
      checkb "flaky index" true (i mod 2 = 0);
      checki "failed attempt number" 1 attempt)
    !retried

let test_pool_retries_exhausted () =
  let retried = ref 0 in
  let out =
    Pool.run_outcomes ~workers:2 ~retries:2
      ~on_retry:(fun _ ~attempt:_ _ -> incr retried)
      (fun i -> if i = 1 then failwith "always" else i)
      [| 0; 1; 2 |]
  in
  (match out.(1) with
  | Pool.Failed f -> checki "attempts = retries + 1" 3 f.Pool.attempts
  | Pool.Ok _ -> Alcotest.fail "job 1 cannot succeed");
  checki "every failed attempt but the last retried" 2 !retried;
  (match out.(0) with Pool.Ok v -> checki "job 0" 0 v | _ -> Alcotest.fail "job 0 ok");
  match out.(2) with Pool.Ok v -> checki "job 2" 2 v | _ -> Alcotest.fail "job 2 ok"

let test_pool_streams_results () =
  (* on_result fires once per job with its final outcome — the hook
     checkpointing is built on. *)
  let seen = ref [] in
  let _ =
    Pool.run_outcomes ~workers:2
      ~on_result:(fun i r -> seen := (i, r) :: !seen)
      (fun i -> if i = 2 then failwith "x" else i)
      [| 0; 1; 2; 3 |]
  in
  checki "one callback per job" 4 (List.length !seen);
  List.iter
    (fun i ->
      match List.assoc_opt i !seen with
      | Some (Pool.Ok v) -> checki "streamed value" i v
      | Some (Pool.Failed _) -> checki "only job 2 fails" 2 i
      | None -> Alcotest.failf "no callback for job %d" i)
    [ 0; 1; 2; 3 ]

let test_pool_us_rounding () =
  (* Regression: int_of_float truncated sub-microsecond spans to 0. *)
  checki "0.4us rounds down" 0 (Pool.us_of_seconds 0.4e-6);
  checki "0.6us rounds up" 1 (Pool.us_of_seconds 0.6e-6);
  checki "1.5us rounds to 2" 2 (Pool.us_of_seconds 1.5e-6);
  checki "exact" 42 (Pool.us_of_seconds 42e-6)

let test_pool_failure_counters () =
  let reg = Gossip_obs.Registry.create () in
  let _ =
    Pool.run_outcomes ~workers:2 ~retries:1 ~telemetry:reg
      (fun i -> if i >= 4 then failwith "down" else i)
      (Array.init 6 (fun i -> i))
  in
  let value name =
    Gossip_obs.Registry.counter_value (Gossip_obs.Registry.counter reg name)
  in
  checki "pool.failures" 2 (value "pool.failures");
  checki "pool.retries" 2 (value "pool.retries")

(* qcheck: against a random fail mask, the pool preserves every
   successful result in order, reports each failure exactly once, and
   is deterministic across worker counts. *)
let pool_random_failures =
  QCheck.Test.make ~name:"pool outcomes deterministic across workers" ~count:60
    QCheck.(pair (list_of_size Gen.(1 -- 25) bool) (int_range 1 4))
    (fun (mask, workers) ->
      let mask = Array.of_list mask in
      let n = Array.length mask in
      let f i = if mask.(i) then failwith (Printf.sprintf "f%d" i) else i * i in
      let shape r =
        Array.map
          (function
            | Pool.Ok v -> Printf.sprintf "ok:%d" v
            | Pool.Failed f ->
                Printf.sprintf "fail:%s:%d" (Pool.failure_message f) f.Pool.attempts)
          r
      in
      let reference = shape (Pool.run_outcomes ~workers:1 f (Array.init n (fun i -> i))) in
      (* Every success in order, every failure reported exactly once. *)
      Array.iteri
        (fun i s ->
          let expected =
            if mask.(i) then Printf.sprintf "fail:Failure(\"f%d\"):1" i
            else Printf.sprintf "ok:%d" (i * i)
          in
          if s <> expected then QCheck.Test.fail_reportf "slot %d: %s <> %s" i s expected)
        reference;
      let parallel = shape (Pool.run_outcomes ~workers f (Array.init n (fun i -> i))) in
      reference = parallel)

(* ------------------------------------------------------------------ *)
(* Sweep *)

let small_jobs protocol =
  Sweep.make_jobs
    ~family:(Sweep.Ring_of_cliques { size = 6; bridge_latency = 4 })
    ~n:48 ~protocol ~trials:4 ~base_seed:1 ~max_rounds:100_000 ()

let test_sweep_runs_and_completes () =
  let outcomes = Sweep.run ~workers:2 (small_jobs Wheel.Push_pull) in
  checki "all trials" 4 (List.length outcomes);
  List.iter
    (fun o ->
      checki "actual n" 48 o.Sweep.n_actual;
      checkb "completed" true (o.Sweep.rounds <> None);
      checkb "timed" true (o.Sweep.elapsed_s >= 0.0))
    outcomes

let test_sweep_deterministic_across_workers () =
  let rounds outcomes = List.map (fun (o : Sweep.outcome) -> o.Sweep.rounds) outcomes in
  let sequential = Sweep.run ~workers:1 (small_jobs Wheel.Push_pull) in
  let parallel = Sweep.run ~workers:3 (small_jobs Wheel.Push_pull) in
  Alcotest.check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "same rounds regardless of pool size" (rounds sequential) (rounds parallel)

let test_sweep_summarize () =
  let outcomes =
    Sweep.run ~workers:2
      (small_jobs Wheel.Push_pull @ small_jobs Wheel.Flood)
  in
  match Sweep.summarize outcomes with
  | [ pp; flood ] ->
      checks "group 1 protocol" "push-pull" pp.Sweep.protocol;
      checks "group 2 protocol" "flood" flood.Sweep.protocol;
      checki "group trials" 4 pp.Sweep.trials;
      checki "group completed" 4 pp.Sweep.completed;
      (match pp.Sweep.rounds with
      | Some s -> checki "stats over 4 trials" 4 s.Gossip_util.Stats.n
      | None -> Alcotest.fail "missing stats");
      checkb "initiations accumulated" true (pp.Sweep.total_initiations > 0)
  | groups -> Alcotest.failf "expected 2 summary groups, got %d" (List.length groups)

let test_sweep_capped_run () =
  (* A one-round cap cannot finish a 48-node broadcast: the summary
     must report zero completions and no stats. *)
  let jobs =
    List.map (fun j -> { j with Sweep.max_rounds = 1 }) (small_jobs Wheel.Push_pull)
  in
  let outcomes = Sweep.run ~workers:2 jobs in
  List.iter (fun (o : Sweep.outcome) -> checkb "capped" true (o.Sweep.rounds = None)) outcomes;
  match Sweep.summarize outcomes with
  | [ s ] ->
      checki "none completed" 0 s.Sweep.completed;
      checkb "no stats" true (s.Sweep.rounds = None)
  | _ -> Alcotest.fail "expected one summary group"

let test_sweep_latency_override () =
  let jobs =
    Sweep.make_jobs
      ~family:(Sweep.Barabasi_albert { attach = 2 })
      ~n:64 ~protocol:Wheel.Push_pull ~trials:2 ~base_seed:5 ~max_rounds:100_000
      ~latency:(Gossip_graph.Gen.Uniform (2, 5))
      ()
  in
  List.iter
    (fun (o : Sweep.outcome) -> checkb "completes with latencies" true (o.Sweep.rounds <> None))
    (Sweep.run ~workers:2 jobs)

let test_sweep_json_shape () =
  let outcomes = Sweep.run ~workers:2 (small_jobs Wheel.Push_pull) in
  let s = Json.to_string (Sweep.to_json ~meta:[ ("tool", Json.String "test") ] outcomes) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "json contains %s" needle) true (contains needle))
    [
      {|"meta":{"tool":"test"}|};
      {|"results":[|};
      {|"summaries":[|};
      {|"family":{"kind":"ring-of-cliques","size":6,"bridge_latency":4}|};
      {|"protocol":"push-pull"|};
      {|"completed":4|};
    ]

let test_sweep_summarize_realized_n () =
  (* Requesting n=50 with size-6 cliques builds 48 nodes; the summary
     must group by the realized count, not the requested one. *)
  checki "realized_n"
    48
    (Sweep.realized_n (Sweep.Ring_of_cliques { size = 6; bridge_latency = 4 }) ~n:50);
  let jobs =
    Sweep.make_jobs
      ~family:(Sweep.Ring_of_cliques { size = 6; bridge_latency = 4 })
      ~n:50 ~protocol:Wheel.Push_pull ~trials:2 ~base_seed:3 ~max_rounds:100_000 ()
  in
  match Sweep.summarize (Sweep.run ~workers:2 jobs) with
  | [ s ] ->
      checki "summary keyed by realized n" 48 s.Sweep.n;
      checki "both trials in one group" 2 s.Sweep.trials
  | groups -> Alcotest.failf "expected one group, got %d" (List.length groups)

let test_sweep_run_ft_inject () =
  let jobs = small_jobs Wheel.Push_pull in
  let crash_seed = (List.nth jobs 1).Sweep.seed in
  let inject (j : Sweep.job) =
    if j.Sweep.seed = crash_seed then failwith "injected crash"
  in
  let report = Sweep.run_ft ~workers:2 ~inject jobs in
  checki "other jobs complete" 3 (List.length report.Sweep.completed);
  checki "one failure" 1 (List.length report.Sweep.failed);
  checki "nothing skipped" 0 report.Sweep.skipped;
  let f = List.hd report.Sweep.failed in
  checki "failed seed" crash_seed f.Sweep.failed_job.Sweep.seed;
  checks "failure message" {|Failure("injected crash")|} f.Sweep.message;
  checki "single attempt" 1 f.Sweep.attempts;
  (* Failures fold into the summary as trials with a failed count. *)
  match Sweep.summarize ~failures:report.Sweep.failed report.Sweep.completed with
  | [ s ] ->
      checki "trials include failure" 4 s.Sweep.trials;
      checki "completed" 3 s.Sweep.completed;
      checki "failed column" 1 s.Sweep.failed
  | groups -> Alcotest.failf "expected one group, got %d" (List.length groups)

let test_sweep_run_ft_retry_recovers () =
  let jobs = small_jobs Wheel.Push_pull in
  let crash_seed = (List.nth jobs 2).Sweep.seed in
  let tries = ref 0 in
  let inject (j : Sweep.job) =
    if j.Sweep.seed = crash_seed then begin
      incr tries;
      if !tries = 1 then failwith "transient"
    end
  in
  (* workers:1 so the injected counter is race-free. *)
  let report = Sweep.run_ft ~workers:1 ~retries:1 ~inject jobs in
  checki "all jobs complete after retry" 4 (List.length report.Sweep.completed);
  checki "no ultimate failures" 0 (List.length report.Sweep.failed);
  (match report.Sweep.retried with
  | [ (j, attempt, msg) ] ->
      checki "retried job" crash_seed j.Sweep.seed;
      checki "attempt" 1 attempt;
      checks "retry message" {|Failure("transient")|} msg
  | l -> Alcotest.failf "expected one retry record, got %d" (List.length l));
  (* The recovered run is indistinguishable from an untroubled one. *)
  let rounds r = List.map (fun (o : Sweep.outcome) -> o.Sweep.rounds) r in
  let clean = Sweep.run ~workers:1 jobs in
  Alcotest.check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "retry leaves trajectories untouched" (rounds clean)
    (rounds report.Sweep.completed)

let with_temp_file f =
  let path = Filename.temp_file "sweep_ckpt" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_sweep_checkpoint_roundtrip () =
  with_temp_file (fun path ->
      let jobs = small_jobs Wheel.Push_pull in
      let report = Sweep.run_ft ~workers:1 ~checkpoint:path jobs in
      checki "all completed" 4 (List.length report.Sweep.completed);
      let entries = Sweep.read_checkpoint path in
      checki "one record per job" 4 (List.length entries);
      List.iter2
        (fun job entry ->
          checkb "key matches" true (Sweep.checkpoint_key entry = Sweep.job_key job);
          match entry with
          | Sweep.Ckpt_done o ->
              checki "realized n persisted" 48 o.Sweep.n_actual;
              checkb "rounds persisted" true (o.Sweep.rounds <> None)
          | Sweep.Ckpt_failed _ -> Alcotest.fail "no failures expected")
        jobs entries;
      (* A fully recorded checkpoint leaves nothing to resume. *)
      checki "resume drops everything" 0 (List.length (Sweep.resume path jobs)))

let test_sweep_resume_skips_recorded () =
  with_temp_file (fun path ->
      let jobs = small_jobs Wheel.Push_pull in
      let full = Sweep.run_ft ~workers:1 ~checkpoint:path jobs in
      (* Simulate a kill after two jobs: truncate the checkpoint, with
         a torn third line as a process killed mid-write would leave. *)
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      let l3 = input_line ic in
      close_in ic;
      let oc = open_out path in
      Printf.fprintf oc "%s\n%s\n%s" l1 l2
        (String.sub l3 0 (String.length l3 / 2));
      close_out oc;
      checki "torn line dropped" 2 (List.length (Sweep.read_checkpoint path));
      checki "two jobs left to run" 2 (List.length (Sweep.resume path jobs));
      let resumed = Sweep.run_ft ~workers:1 ~checkpoint:path ~resume:true jobs in
      checki "skipped from checkpoint" 2 resumed.Sweep.skipped;
      checki "all four present" 4 (List.length resumed.Sweep.completed);
      checki "no failures" 0 (List.length resumed.Sweep.failed);
      (* Per-job results are identical to the uninterrupted run on
         every deterministic field (elapsed_s is wall-clock). *)
      List.iter2
        (fun (a : Sweep.outcome) (b : Sweep.outcome) ->
          checkb "same key" true (Sweep.job_key a.Sweep.job = Sweep.job_key b.Sweep.job);
          checki "same n_actual" a.Sweep.n_actual b.Sweep.n_actual;
          checki "same edges" a.Sweep.edges b.Sweep.edges;
          checkb "same rounds" true (a.Sweep.rounds = b.Sweep.rounds);
          checki "same deliveries" a.Sweep.metrics.Engine.deliveries
            b.Sweep.metrics.Engine.deliveries;
          checki "same initiations" a.Sweep.metrics.Engine.initiations
            b.Sweep.metrics.Engine.initiations)
        full.Sweep.completed resumed.Sweep.completed;
      (* The checkpoint now carries all four records again. *)
      checki "checkpoint repopulated" 4 (List.length (Sweep.read_checkpoint path)))

let test_sweep_checkpoint_records_failures () =
  with_temp_file (fun path ->
      let jobs = small_jobs Wheel.Push_pull in
      let crash_seed = (List.hd jobs).Sweep.seed in
      let inject (j : Sweep.job) =
        if j.Sweep.seed = crash_seed then failwith "injected crash"
      in
      let report = Sweep.run_ft ~workers:1 ~checkpoint:path ~inject jobs in
      checki "one failure" 1 (List.length report.Sweep.failed);
      let failures =
        List.filter
          (function Sweep.Ckpt_failed _ -> true | Sweep.Ckpt_done _ -> false)
          (Sweep.read_checkpoint path)
      in
      (match failures with
      | [ Sweep.Ckpt_failed f ] ->
          checki "failed seed persisted" crash_seed f.Sweep.failed_job.Sweep.seed;
          checks "message persisted" {|Failure("injected crash")|} f.Sweep.message
      | _ -> Alcotest.fail "expected exactly one ckpt_fail record");
      (* A recorded failure is not retried on resume. *)
      checki "failure counts as recorded" 0 (List.length (Sweep.resume path jobs)))

let test_pool_budget_workers () =
  let rec_count = Domain.recommended_domain_count () in
  (* Requested count passes through when each job uses one domain. *)
  checki "d=1 keeps request" (min 3 (max 1 rec_count))
    (Pool.budget_workers ~workers:3 ~domains_per_job:1 ());
  (* A domains-per-job bigger than the machine still leaves one worker. *)
  checki "never below one worker" 1
    (Pool.budget_workers ~workers:8 ~domains_per_job:(rec_count + 5) ());
  (* workers * domains_per_job never exceeds the recommended count
     (unless that would mean zero workers). *)
  for d = 1 to 6 do
    let w = Pool.budget_workers ~workers:16 ~domains_per_job:d () in
    checkb
      (Printf.sprintf "budget d=%d" d)
      true
      (w >= 1 && (w * d <= rec_count || w = 1))
  done;
  match Pool.budget_workers ~domains_per_job:0 () with
  | _ -> Alcotest.fail "domains_per_job 0 accepted"
  | exception Invalid_argument _ -> ()

let test_sweep_sharded_jobs_deterministic () =
  (* Per-job engine sharding must not change any outcome: domains:2
     through the sweep equals the plain sequential sweep. *)
  let jobs = small_jobs Wheel.Push_pull in
  let shape r =
    List.map
      (fun (o : Sweep.outcome) ->
        (o.Sweep.rounds, o.Sweep.metrics.Engine.initiations, o.Sweep.metrics.Engine.deliveries))
      r
  in
  let sequential = Sweep.run ~workers:2 jobs in
  let sharded = Sweep.run ~workers:2 ~domains:2 jobs in
  checkb "sharded jobs match sequential" true (shape sequential = shape sharded);
  let ft = Sweep.run_ft ~workers:1 ~domains:2 jobs in
  checki "run_ft all complete" 4 (List.length ft.Sweep.completed);
  checkb "run_ft sharded matches too" true (shape sequential = shape ft.Sweep.completed)

let test_sweep_pool_exhausted_failure_path () =
  (* A 2-slot exchange pool cannot hold a 48-node push-pull round: every
     job must come back as a structured Pool_exhausted failure — the
     campaign survives — and the registered printer must make the
     message actionable. *)
  let contains s needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  let jobs = small_jobs Wheel.Push_pull in
  let report = Sweep.run_ft ~workers:1 ~pool_capacity:2 jobs in
  checki "no job completes" 0 (List.length report.Sweep.completed);
  checki "every job fails structured" 4 (List.length report.Sweep.failed);
  List.iter
    (fun (f : Sweep.failure) ->
      checkb "typed exception printed" true (contains f.Sweep.message "Pool_exhausted");
      checkb "live-slot count printed" true (contains f.Sweep.message "2 live exchanges");
      checki "single attempt" 1 f.Sweep.attempts)
    report.Sweep.failed;
  (* The same cap reaches run/run_job too: fail-fast semantics. *)
  (match Sweep.run_job ~pool_capacity:2 (List.hd jobs) with
  | _ -> Alcotest.fail "expected Pool_exhausted"
  | exception Wheel.Pool_exhausted { used; round } ->
      checki "used at ceiling" 2 used;
      checki "first round" 0 round);
  (* An adequate capacity changes nothing. *)
  let bare = Sweep.run_job (List.hd jobs) in
  let capped = Sweep.run_job ~pool_capacity:4096 (List.hd jobs) in
  checkb "capacity never steers outcomes" true
    (bare.Sweep.rounds = capped.Sweep.rounds
    && bare.Sweep.metrics = capped.Sweep.metrics)

let test_sweep_resume_requires_checkpoint () =
  Alcotest.check_raises "resume without checkpoint"
    (Invalid_argument "Sweep.run_ft: ~resume:true requires a checkpoint path")
    (fun () ->
      ignore (Sweep.run_ft ~resume:true (small_jobs Wheel.Push_pull)))

let () =
  Alcotest.run "gossip_sweep"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
          Alcotest.test_case "write file" `Quick test_json_write;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "empty and clamp" `Quick test_pool_empty_and_clamp;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "default workers" `Quick test_pool_default_workers;
          Alcotest.test_case "outcomes capture failures" `Quick test_pool_outcomes_capture;
          Alcotest.test_case "retry recovers" `Quick test_pool_retry_recovers;
          Alcotest.test_case "retries exhausted" `Quick test_pool_retries_exhausted;
          Alcotest.test_case "streams results" `Quick test_pool_streams_results;
          Alcotest.test_case "microsecond rounding" `Quick test_pool_us_rounding;
          Alcotest.test_case "failure counters" `Quick test_pool_failure_counters;
          Alcotest.test_case "budget workers" `Quick test_pool_budget_workers;
          QCheck_alcotest.to_alcotest pool_random_failures;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "runs and completes" `Quick test_sweep_runs_and_completes;
          Alcotest.test_case "deterministic across workers" `Quick
            test_sweep_deterministic_across_workers;
          Alcotest.test_case "summarize" `Quick test_sweep_summarize;
          Alcotest.test_case "capped run" `Quick test_sweep_capped_run;
          Alcotest.test_case "latency override" `Quick test_sweep_latency_override;
          Alcotest.test_case "json shape" `Quick test_sweep_json_shape;
          Alcotest.test_case "summarize by realized n" `Quick
            test_sweep_summarize_realized_n;
          Alcotest.test_case "run_ft inject" `Quick test_sweep_run_ft_inject;
          Alcotest.test_case "run_ft retry recovers" `Quick
            test_sweep_run_ft_retry_recovers;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_sweep_checkpoint_roundtrip;
          Alcotest.test_case "resume skips recorded" `Quick
            test_sweep_resume_skips_recorded;
          Alcotest.test_case "checkpoint records failures" `Quick
            test_sweep_checkpoint_records_failures;
          Alcotest.test_case "sharded jobs deterministic" `Quick
            test_sweep_sharded_jobs_deterministic;
          Alcotest.test_case "pool exhausted failure path" `Quick
            test_sweep_pool_exhausted_failure_path;
          Alcotest.test_case "resume requires checkpoint" `Quick
            test_sweep_resume_requires_checkpoint;
        ] );
    ]
