(* Unit and property tests for gossip_util: Rng, Stats, Bitset, Heap,
   Union_find, Table. *)

module Rng = Gossip_util.Rng
module Stats = Gossip_util.Stats
module Bitset = Gossip_util.Bitset
module Heap = Gossip_util.Heap
module Union_find = Gossip_util.Union_find
module Table = Gossip_util.Table
module Json = Gossip_util.Json

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.of_int 12345 and b = Rng.of_int 12345 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  checkb "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.of_int 99 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.of_int 7 in
  let b = Rng.split a in
  checkb "split stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    checkb "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.of_int 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.of_int 4 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 5 in
    checkb "in [-3,5]" true (v >= -3 && v <= 5)
  done

let test_rng_int_covers_range () =
  let rng = Rng.of_int 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int rng 4) <- true
  done;
  checkb "all residues seen" true (Array.for_all (fun b -> b) seen)

let test_rng_float_bounds () =
  let rng = Rng.of_int 6 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_mean_uniform () =
  let rng = Rng.of_int 8 in
  let sum = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum + Rng.int rng 100
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  checkb "mean near 49.5" true (Float.abs (mean -. 49.5) < 2.0)

let test_rng_bernoulli_extremes () =
  let rng = Rng.of_int 9 in
  for _ = 1 to 100 do
    checkb "p=1 always true" true (Rng.bernoulli rng 1.0);
    checkb "p=0 always false" false (Rng.bernoulli rng 0.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.of_int 10 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_geometric_one () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 50 do
    checki "p=1 gives 1" 1 (Rng.geometric rng 1.0)
  done

let test_rng_geometric_mean () =
  let rng = Rng.of_int 12 in
  let sum = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum + Rng.geometric rng 0.25
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  checkb "mean near 4" true (Float.abs (mean -. 4.0) < 0.25)

let test_rng_geometric_tiny_p () =
  (* log(1-p) underflows to 0 for denormal-small p, and the division
     overflows to infinity for merely tiny p: both used to reach
     int_of_float undefined-behavior territory.  Hardened: the result
     saturates at max_int instead. *)
  let rng = Rng.of_int 16 in
  List.iter
    (fun p ->
      let v = Rng.geometric rng p in
      checkb (Printf.sprintf "p=%g in [1, max_int]" p) true (v >= 1 && v <= max_int))
    [ 1e-18; 1e-300; Float.min_float; 4.9e-324 ]

let prop_rng_geometric_bounds =
  QCheck.Test.make ~name:"geometric is finite and >= 1 for all p in (0,1]" ~count:500
    QCheck.(pair (int_range 0 10_000) (float_range 1e-9 1.0))
    (fun (seed, p) ->
      let p = if p <= 0.0 then 1e-9 else p in
      let v = Rng.geometric (Rng.of_int seed) p in
      v >= 1 && v <= max_int)

let test_rng_shuffle_permutes () =
  let rng = Rng.of_int 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "multiset preserved" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_member () =
  let rng = Rng.of_int 14 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    checkb "pick is member" true (Array.exists (( = ) (Rng.pick rng a)) a)
  done

let test_rng_pick_empty () =
  let rng = Rng.of_int 15 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_rng_sample_without_replacement () =
  let rng = Rng.of_int 16 in
  let s = Rng.sample_without_replacement rng 10 30 in
  checki "length" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 0 to 8 do
    checkb "distinct" true (sorted.(i) <> sorted.(i + 1))
  done;
  Array.iter (fun v -> checkb "range" true (v >= 0 && v < 30)) s

let test_rng_sample_full () =
  let rng = Rng.of_int 17 in
  let s = Rng.sample_without_replacement rng 5 5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" [| 0; 1; 2; 3; 4 |] sorted

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int in range" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () = checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_variance () =
  checkf "variance" (35.0 /. 12.0) (Stats.variance [| 1.0; 2.0; 3.0; 5.0 |])

let test_stats_variance_small () =
  checkf "n<2 variance" 0.0 (Stats.variance [| 42.0 |])

let test_stats_stddev () = checkf "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] *. sqrt (7.0 /. 8.0))

let test_stats_percentile_endpoints () =
  let a = [| 5.0; 1.0; 3.0 |] in
  checkf "p0 is min" 1.0 (Stats.percentile a 0.0);
  checkf "p100 is max" 5.0 (Stats.percentile a 100.0)

let test_stats_percentile_interpolation () =
  checkf "p25 of 1..5" 2.0 (Stats.percentile [| 1.0; 2.0; 3.0; 4.0; 5.0 |] 25.0);
  checkf "p50 even" 2.5 (Stats.percentile [| 1.0; 2.0; 3.0; 4.0 |] 50.0)

let test_stats_median_odd () = checkf "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_summarize () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  checki "n" 4 s.Stats.n;
  checkf "mean" 2.5 s.Stats.mean;
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 4.0 s.Stats.max

let test_stats_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let f = Stats.linear_fit xs ys in
  checkf "slope" 2.0 f.Stats.slope;
  checkf "intercept" 1.0 f.Stats.intercept;
  checkf "r2" 1.0 f.Stats.r2

let test_stats_loglog_fit () =
  let xs = [| 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 3.0 *. (x ** 1.5)) xs in
  let f = Stats.loglog_fit xs ys in
  checkb "exponent ~1.5" true (Float.abs (f.Stats.slope -. 1.5) < 1e-9)

let test_stats_loglog_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.loglog_fit: non-positive value") (fun () ->
      ignore (Stats.loglog_fit [| 0.0; 1.0 |] [| 1.0; 2.0 |]))

let test_stats_geometric_mean () =
  checkf "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_confidence () =
  let m, hw = Stats.mean_confidence95 [| 1.0; 2.0; 3.0 |] in
  checkf "mean" 2.0 m;
  checkb "halfwidth positive" true (hw > 0.0)

let prop_stats_percentile_bounded =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (a, p) ->
      QCheck.assume (Array.length a > 0);
      let v = Stats.percentile a p in
      let mn = Array.fold_left min a.(0) a and mx = Array.fold_left max a.(0) a in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let test_stats_percentile_single () =
  List.iter
    (fun p -> checkf (Printf.sprintf "p%.0f of singleton" p) 7.5 (Stats.percentile [| 7.5 |] p))
    [ 0.0; 25.0; 50.0; 75.0; 100.0 ]

let test_stats_percentile_two () =
  let a = [| 10.0; 20.0 |] in
  checkf "p0" 10.0 (Stats.percentile a 0.0);
  checkf "p25" 12.5 (Stats.percentile a 25.0);
  checkf "median" 15.0 (Stats.percentile a 50.0);
  checkf "p75" 17.5 (Stats.percentile a 75.0);
  checkf "p100" 20.0 (Stats.percentile a 100.0)

let test_stats_all_equal () =
  let a = Array.make 9 3.25 in
  let s = Stats.summarize a in
  checkf "mean" 3.25 s.Stats.mean;
  checkf "stddev" 0.0 s.Stats.stddev;
  checkf "p25" 3.25 s.Stats.p25;
  checkf "median" 3.25 s.Stats.median;
  checkf "p95" 3.25 s.Stats.p95

let test_stats_nan_rejected () =
  (* Regression: the old polymorphic-compare sort silently produced an
     unspecified order (and so a garbage percentile) when a NaN slipped
     into the sample; both entry points must reject it loudly. *)
  Alcotest.check_raises "percentile NaN"
    (Invalid_argument "Stats.percentile: NaN in sample") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 3.0 |] 50.0));
  Alcotest.check_raises "summarize NaN"
    (Invalid_argument "Stats.summarize: NaN in sample") (fun () ->
      ignore (Stats.summarize [| 2.0; Float.nan |]));
  (* Infinities are ordered fine and stay legal. *)
  checkf "inf is max" Float.infinity (Stats.percentile [| 1.0; Float.infinity |] 100.0)

let test_stats_summarize_matches_percentile () =
  (* summarize now sorts once and reads every quantile off that one
     sorted copy — each field must still equal the percentile API. *)
  let a = [| 9.0; 2.0; 7.0; 4.0; 6.0; 1.0; 8.0 |] in
  let s = Stats.summarize a in
  checkf "min" 1.0 s.Stats.min;
  checkf "p25" (Stats.percentile a 25.0) s.Stats.p25;
  checkf "median" (Stats.percentile a 50.0) s.Stats.median;
  checkf "p75" (Stats.percentile a 75.0) s.Stats.p75;
  checkf "p95" (Stats.percentile a 95.0) s.Stats.p95;
  checkf "max" 9.0 s.Stats.max

(* Independent oracle: sort, rank = p/100 * (n-1), interpolate between
   the two bracketing order statistics. *)
let naive_percentile a p =
  let b = Array.copy a in
  Array.sort Float.compare b;
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let prop_stats_percentile_oracle =
  QCheck.Test.make ~name:"p25/median/p75 match sort-and-index oracle" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 60) (float_bound_exclusive 1000.0))
    (fun a ->
      QCheck.assume (Array.length a > 0);
      List.for_all
        (fun p -> Float.abs (Stats.percentile a p -. naive_percentile a p) < 1e-6)
        [ 25.0; 50.0; 75.0 ])

(* ------------------------------------------------------------------ *)
(* Json parser / round-trips (the emitter itself is covered in
   test_sweep) *)

let parse_ok s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse of %S failed: %s" s e

let check_roundtrip msg j = checkb msg true (parse_ok (Json.to_string j) = j)

let test_json_parse_scalars () =
  checkb "null" true (parse_ok "null" = Json.Null);
  checkb "true" true (parse_ok "true" = Json.Bool true);
  checkb "int" true (parse_ok "-42" = Json.Int (-42));
  checkb "float" true (parse_ok "0.5" = Json.Float 0.5);
  checkb "exponent is float" true (parse_ok "1e2" = Json.Float 100.0);
  checkb "string" true (parse_ok {|"ab"|} = Json.String "ab")

let test_json_parse_errors () =
  let bad s = checkb (Printf.sprintf "%S rejected" s) true (Result.is_error (Json.of_string s)) in
  List.iter bad
    [ ""; "nul"; "[1,"; "{\"a\":}"; "\"unterminated"; "1 2"; "[1] garbage"; "{\"a\" 1}"; "+5" ]

let test_json_number_grammar () =
  (* Regression: the old lexer accepted any [0-9.eE+-]* soup and let
     float_of_string sort it out, so non-RFC-8259 numbers like "0123"
     or "1." parsed.  The grammar is now strict. *)
  let bad s =
    checkb (Printf.sprintf "%S rejected" s) true (Result.is_error (Json.of_string s))
  in
  List.iter bad
    [ "0123"; "-01"; "00"; "1."; "3.e2"; ".5"; "1e"; "1e+"; "1E-"; "-"; "--1"; "1.2.3"; "1e2.5" ];
  checkb "zero" true (parse_ok "0" = Json.Int 0);
  checkb "negative zero" true (parse_ok "-0" = Json.Int 0);
  checkb "zero with fraction" true (parse_ok "0.25" = Json.Float 0.25);
  checkb "fraction" true (parse_ok "6.25e2" = Json.Float 625.0);
  checkb "capital exponent" true (parse_ok "1E-3" = Json.Float 0.001);
  checkb "signed exponent" true (parse_ok "2e+2" = Json.Float 200.0);
  checkb "exponent on integer part" true (parse_ok "5e1" = Json.Float 50.0)

let test_json_control_chars () =
  (* the emitter must escape every control character below 0x20 and the
     parser must decode them back *)
  let s = String.init 32 Char.chr in
  let rendered = Json.to_string (Json.String s) in
  String.iter
    (fun c -> checkb "no raw control char" true (Char.code c >= 0x20))
    rendered;
  check_roundtrip "all control chars round-trip" (Json.String s);
  check Alcotest.string "tab newline escapes" {|"\t\n"|} (Json.to_string (Json.String "\t\n"))

let test_json_unicode_escapes () =
  checkb "bmp escape" true (parse_ok {|"é"|} = Json.String "\xc3\xa9");
  checkb "surrogate pair" true (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  checkb "lone high surrogate rejected" true (Result.is_error (Json.of_string {|"\ud83d"|}))

let test_json_nonfinite_to_null () =
  checkb "nan" true (parse_ok (Json.to_string (Json.Float Float.nan)) = Json.Null);
  checkb "inf" true (parse_ok (Json.to_string (Json.Float Float.infinity)) = Json.Null);
  checkb "neg inf" true
    (parse_ok (Json.to_string (Json.Float Float.neg_infinity)) = Json.Null)

let test_json_deep_nesting () =
  let deep = ref (Json.Int 1) in
  for _ = 1 to 300 do
    deep := Json.List [ !deep ]
  done;
  check_roundtrip "300-deep list" !deep;
  let deep_obj = ref (Json.String "x") in
  for _ = 1 to 300 do
    deep_obj := Json.Obj [ ("k", !deep_obj) ]
  done;
  check_roundtrip "300-deep object" !deep_obj

let json_gen =
  (* integral floats render as "3" and parse back as Int, so draw
     fractional floats only; non-finite floats are covered separately *)
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun i -> Json.Float (float_of_int i +. 0.5)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec tree depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (tree (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 0 6)) (tree (depth - 1)))) );
        ]
  in
  tree 4

let prop_json_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trip" ~count:500
    (QCheck.make json_gen) (fun j -> parse_ok (Json.to_string j) = j)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_empty () =
  let b = Bitset.create 10 in
  checki "cardinal 0" 0 (Bitset.cardinal b);
  checkb "is_empty" true (Bitset.is_empty b);
  checkb "not full" false (Bitset.is_full b)

let test_bitset_add_mem () =
  let b = Bitset.create 20 in
  Bitset.add b 7;
  Bitset.add b 19;
  checkb "mem 7" true (Bitset.mem b 7);
  checkb "mem 19" true (Bitset.mem b 19);
  checkb "not mem 8" false (Bitset.mem b 8);
  checki "cardinal" 2 (Bitset.cardinal b)

let test_bitset_remove () =
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  Bitset.remove b 2;
  checkb "removed" false (Bitset.mem b 2);
  checki "cardinal" 2 (Bitset.cardinal b)

let test_bitset_singleton_full () =
  let s = Bitset.singleton 9 4 in
  checki "singleton cardinal" 1 (Bitset.cardinal s);
  let f = Bitset.full 9 in
  checkb "full is_full" true (Bitset.is_full f);
  checki "full cardinal" 9 (Bitset.cardinal f)

let test_bitset_union_into () =
  let a = Bitset.of_list 8 [ 1; 2 ] and b = Bitset.of_list 8 [ 2; 5 ] in
  checkb "changed" true (Bitset.union_into ~into:a b);
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 5 ] (Bitset.to_list a);
  checkb "idempotent" false (Bitset.union_into ~into:a b)

let test_bitset_subset_equal () =
  let a = Bitset.of_list 8 [ 1; 2 ] and b = Bitset.of_list 8 [ 1; 2; 3 ] in
  checkb "a<=b" true (Bitset.subset a b);
  checkb "b<=a false" false (Bitset.subset b a);
  checkb "equal self" true (Bitset.equal a (Bitset.copy a));
  checkb "not equal" false (Bitset.equal a b)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 8 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  checkb "original unchanged" false (Bitset.mem a 2)

let test_bitset_bounds () =
  let b = Bitset.create 5 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      Bitset.add b 5)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 5 and b = Bitset.create 6 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Bitset.union_into ~into:a b))

let test_bitset_choose_missing () =
  let b = Bitset.of_list 4 [ 0; 1; 3 ] in
  check (Alcotest.option Alcotest.int) "missing 2" (Some 2) (Bitset.choose_missing b);
  check (Alcotest.option Alcotest.int) "full none" None (Bitset.choose_missing (Bitset.full 3))

let test_bitset_fold_iter () =
  let b = Bitset.of_list 10 [ 2; 4; 6 ] in
  checki "fold sum" 12 (Bitset.fold (fun i acc -> i + acc) b 0);
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) b;
  check (Alcotest.list Alcotest.int) "iter ascending" [ 2; 4; 6 ] (List.rev !acc)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list roundtrip" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 63))
    (fun l ->
      let uniq = List.sort_uniq compare l in
      let b = Bitset.of_list 64 l in
      Bitset.to_list b = uniq && Bitset.cardinal b = List.length uniq)

(* The incrementally-tracked cardinal must agree with a naive popcount
   after any interleaving of add / remove (including redundant ones) /
   union_into / copy — the invariant that makes is_full O(1). *)
let prop_bitset_cardinal_incremental =
  QCheck.Test.make ~name:"bitset cardinal = naive count under mutation" ~count:300
    QCheck.(
      pair (int_range 1 70)
        (list_of_size Gen.(int_range 0 60) (pair (int_range 0 3) (int_range 0 1000))))
    (fun (n, ops) ->
      let b = Bitset.create n in
      let other = Bitset.of_list n (List.filteri (fun i _ -> i mod 3 = 0) (List.init n Fun.id)) in
      let naive s = Bitset.fold (fun _ acc -> acc + 1) s 0 in
      List.for_all
        (fun (op, x) ->
          let b' =
            match op with
            | 0 ->
                Bitset.add b (x mod n);
                b
            | 1 ->
                Bitset.remove b (x mod n);
                b
            | 2 ->
                ignore (Bitset.union_into ~into:b other);
                b
            | _ -> Bitset.copy b
          in
          Bitset.cardinal b' = naive b'
          && Bitset.is_full b' = (naive b' = n)
          && Bitset.is_empty b' = (naive b' = 0))
        ops)

(* ------------------------------------------------------------------ *)
(* Allocation discipline: the Bytes-backed RNG must draw without
   allocating (the scale engine's round loop budget depends on it).
   Measured over enough draws that the two boxed floats Gc.minor_words
   itself returns disappear into the average. *)

let test_rng_draws_allocation_free () =
  let t = Rng.of_int 42 in
  (* warm up: promote the stream state, trigger any lazy init *)
  for _ = 1 to 100 do
    ignore (Rng.int t 97)
  done;
  let draws = 50_000 in
  let before = Gc.minor_words () in
  let acc = ref 0 in
  for _ = 1 to draws do
    acc := !acc + Rng.int t 97
  done;
  let per_draw = (Gc.minor_words () -. before) /. float_of_int draws in
  checkb "sum sane" true (!acc > 0);
  if per_draw > 0.1 then
    Alcotest.failf "Rng.int allocates %.3f words/draw (expected ~0)" per_draw

(* The representation change (int64 record -> 8 bytes) must not change
   a single draw: pin a few values of the splitmix64 sequence. *)
let test_rng_sequence_pinned () =
  let t = Rng.of_int 1 in
  let a = Rng.int t 1_000_000 in
  let b = Rng.int t 1_000_000 in
  let s = Rng.split t in
  let c = Rng.int s 1_000_000 in
  checki "draw 1" 46657 a;
  checki "draw 2" 652711 b;
  checki "split draw" 467813 c

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  Heap.push h 5 "five";
  Heap.push h 1 "one";
  Heap.push h 3 "three";
  checki "length" 3 (Heap.length h);
  check (Alcotest.pair Alcotest.int Alcotest.string) "peek" (1, "one") (Heap.peek_min h);
  check (Alcotest.pair Alcotest.int Alcotest.string) "pop1" (1, "one") (Heap.pop_min h);
  check (Alcotest.pair Alcotest.int Alcotest.string) "pop2" (3, "three") (Heap.pop_min h);
  check (Alcotest.pair Alcotest.int Alcotest.string) "pop3" (5, "five") (Heap.pop_min h);
  checkb "empty again" true (Heap.is_empty h)

let test_heap_empty_raises () =
  let h : int Heap.t = Heap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop_min h))

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1 ();
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 2; 2; 1; 1; 3 ];
  let popped = List.init 5 (fun _ -> fst (Heap.pop_min h)) in
  check (Alcotest.list Alcotest.int) "sorted with dups" [ 1; 1; 2; 2; 3 ] popped

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 100) small_int)
    (fun l ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) l;
      let out = List.init (List.length l) (fun _ -> fst (Heap.pop_min h)) in
      out = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  checki "initial count" 5 (Union_find.count uf);
  checkb "union" true (Union_find.union uf 0 1);
  checkb "re-union" false (Union_find.union uf 0 1);
  checkb "same" true (Union_find.same uf 0 1);
  checkb "not same" false (Union_find.same uf 0 2);
  checki "count" 4 (Union_find.count uf)

let test_uf_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  checkb "0~2" true (Union_find.same uf 0 2);
  checkb "0!~3" false (Union_find.same uf 0 3);
  checki "count" 3 (Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  checkb "right aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "b" ^ String.make 9 ' ' ^ "22") lines)

let test_table_row_mismatch () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  check Alcotest.string "int" "42" (Table.cell_int 42);
  check Alcotest.string "float" "3.14" (Table.cell_float ~decimals:2 3.14159)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gossip_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean_uniform;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_one;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "geometric tiny p" `Quick test_rng_geometric_tiny_p;
          qtest prop_rng_geometric_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "sample full permutation" `Quick test_rng_sample_full;
          Alcotest.test_case "draws are allocation-free" `Quick
            test_rng_draws_allocation_free;
          Alcotest.test_case "sequence pinned across representation" `Quick
            test_rng_sequence_pinned;
          qtest prop_rng_int_in_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "variance n<2" `Quick test_stats_variance_small;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile endpoints" `Quick test_stats_percentile_endpoints;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "summarize empty" `Quick test_stats_summarize_empty;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "loglog fit" `Quick test_stats_loglog_fit;
          Alcotest.test_case "loglog rejects nonpositive" `Quick
            test_stats_loglog_rejects_nonpositive;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "confidence interval" `Quick test_stats_confidence;
          Alcotest.test_case "percentile single sample" `Quick test_stats_percentile_single;
          Alcotest.test_case "percentile two samples" `Quick test_stats_percentile_two;
          Alcotest.test_case "all-equal sample" `Quick test_stats_all_equal;
          Alcotest.test_case "NaN rejected" `Quick test_stats_nan_rejected;
          Alcotest.test_case "summarize matches percentile" `Quick
            test_stats_summarize_matches_percentile;
          qtest prop_stats_percentile_bounded;
          qtest prop_stats_percentile_oracle;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "number grammar" `Quick test_json_number_grammar;
          Alcotest.test_case "control chars" `Quick test_json_control_chars;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "non-finite to null" `Quick test_json_nonfinite_to_null;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          qtest prop_json_roundtrip;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "singleton/full" `Quick test_bitset_singleton_full;
          Alcotest.test_case "union_into" `Quick test_bitset_union_into;
          Alcotest.test_case "subset/equal" `Quick test_bitset_subset_equal;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "choose_missing" `Quick test_bitset_choose_missing;
          Alcotest.test_case "fold/iter" `Quick test_bitset_fold_iter;
          qtest prop_bitset_roundtrip;
          qtest prop_bitset_cardinal_incremental;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "empty raises" `Quick test_heap_empty_raises;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          qtest prop_heap_sorted;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "transitive" `Quick test_uf_transitive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row mismatch" `Quick test_table_row_mismatch;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
