The gossip daemon end to end from the shell: serve, submit, follow,
fetch, and survive kills.  Result rows are deterministic given seeds;
only wall-clock fields vary, so a strip filter removes them.

  $ strip() { sed -E 's/,?"elapsed_s":[0-9.eE+-]+//g'; }

Strictly-positive knobs are validated at parse time — a clear usage
error, not a deep engine failure minutes into a sweep:

  $ gossip-cli sweep --domains 0 --n 64 --trials 1
  gossip-cli: option '--domains': must be >= 1 (got 0)
  Usage: gossip-cli sweep [OPTION]…
  Try 'gossip-cli sweep --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli sweep --retries=-1 --n 64 --trials 1
  gossip-cli: option '--retries': must be >= 1 (got -1)
  Usage: gossip-cli sweep [OPTION]…
  Try 'gossip-cli sweep --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli sweep --job-timeout 0 --n 64 --trials 1
  gossip-cli: option '--job-timeout': must be > 0 (got 0)
  Usage: gossip-cli sweep [OPTION]…
  Try 'gossip-cli sweep --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli sweep --job-timeout nan --n 64 --trials 1
  gossip-cli: option '--job-timeout': must be finite (got nan)
  Usage: gossip-cli sweep [OPTION]…
  Try 'gossip-cli sweep --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli sweep --job-timeout inf --n 64 --trials 1
  gossip-cli: option '--job-timeout': must be finite (got inf)
  Usage: gossip-cli sweep [OPTION]…
  Try 'gossip-cli sweep --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli serve --socket x.sock --capacity 0
  gossip-cli: option '--capacity': must be >= 1 (got 0)
  Usage: gossip-cli serve [OPTION]…
  Try 'gossip-cli serve --help' or 'gossip-cli --help' for more information.
  [124]
  $ gossip-cli client --socket x.sock submit --trials 0
  gossip-cli: option '--trials': must be >= 1 (got 0)
  Usage: gossip-cli client [OPTION]… ACTION [JOB]
  Try 'gossip-cli client --help' or 'gossip-cli --help' for more information.
  [124]

A client without a daemon fails with a clear message:

  $ gossip-cli client --socket nope.sock ping
  gossip-cli: internal error, uncaught exception:
              Failure("cannot connect to nope.sock: No such file or directory (is the daemon running?)")
              
  [125]

Start a daemon and drive the whole loop: ping, stats, submit, poll,
fetch results, error frames, shutdown.

  $ gossip-cli serve --socket gd.sock --journal journal.jsonl --telemetry telemetry.jsonl --capacity 4 > server.log 2>&1 &
  $ for i in $(seq 1 150); do [ -S gd.sock ] && break; sleep 0.1; done
  $ gossip-cli client --socket gd.sock ping
  {"resp":"pong","proto":1,"server":"gossipd"}
  $ gossip-cli client --socket gd.sock stats
  {"resp":"stats","counters":{"serve.connections":2,"serve.requests.ping":1,"serve.requests.stats":1},"gauges":{"serve.queue_depth":0}}
  $ gossip-cli client --socket gd.sock submit --family ring-of-cliques --n 64 --size 8 --trials 3 --seed 42 --max-rounds 500
  {"resp":"submitted","job":"job-1","position":0,"trials":3}
  $ gossip-cli client --socket gd.sock wait job-1
  {"resp":"status","job":"job-1","state":"done","trials":3,"completed":3,"failed":0}
  $ gossip-cli client --socket gd.sock results job-1 | strip
  {"resp":"result","job":"job-1","row":{"family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":42,"protocol":"push-pull","max_rounds":500,"rounds":47,"initiations":3008,"deliveries":5864,"payload_words":5864,"dropped":0}}
  {"resp":"result","job":"job-1","row":{"family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":7961,"protocol":"push-pull","max_rounds":500,"rounds":40,"initiations":2560,"deliveries":4967,"payload_words":4967,"dropped":0}}
  {"resp":"result","job":"job-1","row":{"family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":15880,"protocol":"push-pull","max_rounds":500,"rounds":37,"initiations":2368,"deliveries":4589,"payload_words":4589,"dropped":0}}
  {"resp":"results_end","job":"job-1","count":3}
  $ gossip-cli client --socket gd.sock status job-99
  {"resp":"error","code":"unknown_job","message":"unknown job \"job-99\""}
  [1]
  $ gossip-cli client --socket gd.sock cancel job-1
  {"resp":"cancelled","job":"job-1","state":"done"}
  $ gossip-cli client --socket gd.sock shutdown
  {"resp":"bye"}
  $ wait
  $ cat server.log
  gossipd listening on gd.sock
  gossipd: drained, exiting

The journal holds the submit, one checkpoint record per trial, and the
terminal close — the PR-3 checkpoint format plus job tags:

  $ strip < journal.jsonl
  {"ev":"serve_submit","job":"job-1","spec":{"family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n":64,"protocol":"push-pull","trials":3,"base_seed":42,"max_rounds":500}}
  {"ev":"ckpt_job","family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":42,"protocol":"push-pull","max_rounds":500,"rounds":47,"initiations":3008,"deliveries":5864,"payload_words":5864,"dropped":0,"rounds_executed":47,"rejected":0,"job":"job-1","trial":0}
  {"ev":"ckpt_job","family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":7961,"protocol":"push-pull","max_rounds":500,"rounds":40,"initiations":2560,"deliveries":4967,"payload_words":4967,"dropped":0,"rounds_executed":40,"rejected":0,"job":"job-1","trial":1}
  {"ev":"ckpt_job","family":{"kind":"ring-of-cliques","size":8,"bridge_latency":8},"n_requested":64,"n":64,"edges":232,"seed":15880,"protocol":"push-pull","max_rounds":500,"rounds":37,"initiations":2368,"deliveries":4589,"payload_words":4589,"dropped":0,"rounds_executed":37,"rejected":0,"job":"job-1","trial":2}
  {"ev":"serve_close","job":"job-1","state":"done"}

The serve.* telemetry snapshot is readable by gossip-cli report
(request counts vary with poll timing, so pick stable counters):

  $ gossip-cli report telemetry.jsonl | grep -E 'serve\.(connections|queue_depth|requests\.submit)'
      serve.connections = 8
      serve.requests.submit = 1
      serve.queue_depth = 0

Graceful shutdown on SIGTERM: stop accepting, abort the in-flight job
at a round boundary, seal the journal, exit 0.

  $ gossip-cli serve --socket gd2.sock --journal journal2.jsonl > server2.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -S gd2.sock ] && break; sleep 0.1; done
  $ gossip-cli client --socket gd2.sock submit --family watts-strogatz --n 150000 --trials 2 --seed 5 > /dev/null
  $ kill -TERM $SRV
  $ wait $SRV
  $ cat server2.log
  gossipd listening on gd2.sock
  gossipd: drained, exiting
  $ grep -c serve_submit journal2.jsonl
  1

kill -9 mid-job, then restart on the same journal: the queue resumes
and completes, and results are served as if nothing happened.

  $ gossip-cli serve --socket gd3.sock --journal journal3.jsonl > server3.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -S gd3.sock ] && break; sleep 0.1; done
  $ gossip-cli client --socket gd3.sock submit --family watts-strogatz --n 120000 --trials 3 --seed 9
  {"resp":"submitted","job":"job-1","position":0,"trials":3}
  $ sleep 1
  $ kill -9 $SRV
  $ wait $SRV
  Killed
  [137]
  $ gossip-cli serve --socket gd3.sock --journal journal3.jsonl > server3b.log 2>&1 &
  $ for i in $(seq 1 150); do [ -S gd3.sock ] && break; sleep 0.1; done
  $ gossip-cli client --socket gd3.sock wait job-1 --wait-timeout 300
  {"resp":"status","job":"job-1","state":"done","trials":3,"completed":3,"failed":0}
  $ gossip-cli client --socket gd3.sock results job-1 | grep -c '"resp":"result"'
  3
  $ gossip-cli client --socket gd3.sock shutdown
  {"resp":"bye"}
  $ wait
