(* Tests for the protocol-kernel layer of lib/scale: protocol
   descriptors, the oriented-spanner packing (Lemma 15 bound), the
   trajectory parity of the scale RR kernel against the reference
   Gossip_core.Rr_broadcast on the paper's gadget families, the
   DTG/flood coincidence, fault-plan and domain-sharding coverage for
   the new kernels, and the EID-at-scale pipeline. *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Gadgets = Gossip_graph.Gadgets
module Engine = Gossip_sim.Engine
module Csr = Gossip_scale.Csr
module Kernel = Gossip_scale.Kernel
module Wheel = Gossip_scale.Wheel_engine
module Registry = Gossip_obs.Registry
module Spanner = Gossip_core.Spanner
module Rr = Gossip_core.Rr_broadcast
module Eid = Gossip_core.Eid

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* Connected G(n, p) with mixed latencies, the standard parity fodder. *)
let gen_graph n seed lmax =
  let grng = Rng.of_int seed in
  let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
  Gen.with_latencies grng (Gen.Uniform (1, lmax)) (Gen.erdos_renyi_connected grng ~n ~p)

let count_informed bytes =
  let c = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr c) bytes;
  !c

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

let test_protocol_roundtrip () =
  List.iter
    (fun p ->
      let s = Kernel.protocol_name p in
      match Kernel.protocol_of_string s with
      | Some p' -> checkb (s ^ " round-trips") true (p = p')
      | None -> Alcotest.failf "%s does not parse back" s)
    [
      Kernel.Push_pull;
      Kernel.Flood;
      Kernel.Random_contact;
      Kernel.Rr_spanner { stretch_k = 0 };
      Kernel.Rr_spanner { stretch_k = 3 };
      Kernel.Dtg_local { ell = 0 };
      Kernel.Dtg_local { ell = 5 };
      Kernel.Unknown_eid;
      Kernel.Unified;
      Kernel.K_rumor { k = 0; budget = 0 };
      Kernel.K_rumor { k = 8; budget = 0 };
      Kernel.K_rumor { k = 8; budget = 3 };
      Kernel.Rumor_rotation { k = 0; budget = 0 };
      Kernel.Rumor_rotation { k = 5; budget = 2 };
      Kernel.Algebraic { k = 0; budget = 0 };
      Kernel.Algebraic { k = 16; budget = 1 };
    ];
  (* Parameterless forms mean "choose automatically". *)
  checkb "bare rr-spanner" true
    (Kernel.protocol_of_string "rr-spanner" = Some (Kernel.Rr_spanner { stretch_k = 0 }));
  checkb "bare dtg" true
    (Kernel.protocol_of_string "dtg" = Some (Kernel.Dtg_local { ell = 0 }));
  checkb "bare k-rumor" true
    (Kernel.protocol_of_string "k-rumor" = Some (Kernel.K_rumor { k = 0; budget = 0 }));
  checkb "k-rumor:4" true
    (Kernel.protocol_of_string "k-rumor:4" = Some (Kernel.K_rumor { k = 4; budget = 0 }));
  checkb "rotation:4:2" true
    (Kernel.protocol_of_string "rotation:4:2"
    = Some (Kernel.Rumor_rotation { k = 4; budget = 2 }));
  checkb "algebraic:16:1" true
    (Kernel.protocol_of_string "algebraic:16:1" = Some (Kernel.Algebraic { k = 16; budget = 1 }));
  List.iter
    (fun s -> checkb ("\"" ^ s ^ "\" rejected") true (Kernel.protocol_of_string s = None))
    [
      "nope"; "rr-spanner:0"; "rr-spanner:x"; "dtg:-2"; "dtg:"; ""; "k-rumor:"; "k-rumor:-1";
      "k-rumor:2:"; "k-rumor:2:-1"; "k-rumor:2:3:4"; "rotation:x"; "algebraic:1:x";
    ];
  checki "known protocols listed" 10 (List.length Kernel.known_protocols);
  (* The engine and the sweep both delegate to this one parser. *)
  checkb "wheel re-export is the same table" true
    (Wheel.protocol_of_string "dtg:3" = Some (Wheel.Dtg_local { ell = 3 }));
  (* The chain descriptors name multi-phase drivers, not single
     kernels: the kernel factory must refuse them. *)
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  List.iter
    (fun p ->
      match Kernel.of_protocol csr p with
      | _ -> Alcotest.failf "%s built as a single kernel" (Kernel.protocol_name p)
      | exception Invalid_argument _ -> ())
    [ Kernel.Unknown_eid; Kernel.Unified ]

let test_of_protocol_rr_needs_spanner () =
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  match Kernel.of_protocol csr (Kernel.Rr_spanner { stretch_k = 2 }) with
  | _ -> Alcotest.fail "Rr_spanner built without a spanner"
  | exception Invalid_argument _ -> ()

(* Satellite: the name <-> descriptor bijection holds over the whole
   descriptor space, parameterized forms included — one generator
   spanning all ten grammar productions. *)
let protocol_gen =
  let open QCheck.Gen in
  let param2 mk = map2 (fun k budget -> mk k budget) (int_range 0 40) (int_range 0 6) in
  oneof
    [
      return Kernel.Push_pull;
      return Kernel.Flood;
      return Kernel.Random_contact;
      map (fun stretch_k -> Kernel.Rr_spanner { stretch_k }) (int_range 0 12);
      map (fun ell -> Kernel.Dtg_local { ell }) (int_range 0 12);
      return Kernel.Unknown_eid;
      return Kernel.Unified;
      param2 (fun k budget -> Kernel.K_rumor { k; budget });
      param2 (fun k budget -> Kernel.Rumor_rotation { k; budget });
      param2 (fun k budget -> Kernel.Algebraic { k; budget });
    ]

let prop_protocol_roundtrip =
  QCheck.Test.make ~name:"protocol_of_string inverts protocol_name on every descriptor"
    ~count:300
    (QCheck.make protocol_gen ~print:Kernel.protocol_name)
    (fun p -> Kernel.protocol_of_string (Kernel.protocol_name p) = Some p)

(* ------------------------------------------------------------------ *)
(* Oriented spanner packing *)

(* Lemma 15's precondition: the oriented Baswana–Sen out-degree stays
   under 8 n^(1/k) ln n, and the flat packing preserves it exactly. *)
let prop_spanner_out_degree =
  QCheck.Test.make ~name:"oriented Baswana-Sen obeys the Lemma 15 out-degree bound" ~count:30
    QCheck.(triple (int_range 8 120) (int_range 0 100_000) (int_range 2 4))
    (fun (n, seed, k) ->
      let g = gen_graph n seed 5 in
      let s = Spanner.build (Rng.of_int (seed + 1)) g ~k () in
      let bound =
        int_of_float
          (ceil (8.0 *. (float_of_int n ** (1.0 /. float_of_int k)) *. log (float_of_int n)))
      in
      let o = Csr.of_oriented_spanner ~out_degree_bound:bound s.Spanner.out_edges in
      Csr.oriented_max_out_degree o = Spanner.max_out_degree s
      && Csr.oriented_max_out_degree o <= bound)

let prop_oriented_roundtrip =
  QCheck.Test.make ~name:"of_oriented_spanner packs edge-for-edge in row order" ~count:40
    QCheck.(pair (int_range 5 80) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 6 in
      let s = Spanner.build (Rng.of_int (seed + 2)) g ~k:3 () in
      let o = Csr.of_oriented_spanner s.Spanner.out_edges in
      let total = Array.fold_left (fun a r -> a + Array.length r) 0 s.Spanner.out_edges in
      let ok = ref (Csr.oriented_n o = n && Csr.oriented_edge_count o = total) in
      Array.iteri
        (fun v row ->
          let i = ref 0 in
          Csr.oriented_iter_out o v (fun peer lat ->
              (if !i >= Array.length row then ok := false
               else
                 let p, l = row.(!i) in
                 if p <> peer || l <> lat then ok := false);
              incr i);
          if !i <> Array.length row then ok := false)
        s.Spanner.out_edges;
      !ok)

let test_out_degree_bound_enforced () =
  let rows = [| [| (1, 1); (2, 1); (3, 2) |]; [||]; [||]; [||] |] in
  (match Csr.of_oriented_spanner ~out_degree_bound:2 rows with
  | _ -> Alcotest.fail "bound violation accepted"
  | exception Invalid_argument _ -> ());
  checki "bound met passes" 3
    (Csr.oriented_edge_count (Csr.of_oriented_spanner ~out_degree_bound:3 rows))

(* ------------------------------------------------------------------ *)
(* RR kernel vs reference Rr_broadcast: trajectory parity *)

(* Same orientation, same finite window, same seedless round-robin: the
   wheel's informed bit must evolve exactly like membership of the
   source rumor in the reference engine's sets. *)
let check_rr_parity label g source seed =
  let n = Graph.n g in
  let csr = Csr.of_graph g in
  let k = Graph.max_latency g in
  let s = Spanner.build (Rng.of_int seed) g ~k:2 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  let delta_out = Csr.oriented_max_out_degree (Csr.oriented_filter_le oriented k) in
  let iterations = (k * delta_out) + k in
  let sets =
    Array.init n (fun v ->
        let b = Bitset.create n in
        if v = source then Bitset.add b source;
        b)
  in
  let core = Rr.run ~base:g ~out_edges:s.Spanner.out_edges ~k ~rumors:sets ~iterations () in
  let kernel = Kernel.rr_broadcast ~iterations ~k oriented in
  let t = Wheel.create_kernel (Rng.of_int 0) csr ~kernel ~source in
  for _ = 1 to iterations + k do
    Wheel.step t
  done;
  for v = 0 to n - 1 do
    if Wheel.informed t v <> Bitset.mem core.Rr.sets.(v) source then
      Alcotest.failf "%s: node %d informed bit diverges from the reference" label v
  done;
  checki (label ^ " initiations") core.Rr.metrics.Engine.initiations
    (Wheel.metrics t).Engine.initiations;
  checki (label ^ " deliveries") core.Rr.metrics.Engine.deliveries
    (Wheel.metrics t).Engine.deliveries

let test_rr_parity_gadgets () =
  let m = 6 in
  let target = Gadgets.singleton_target (Rng.of_int 77) ~m in
  let gp = Gadgets.g_p ~m ~target ~fast_latency:1 ~slow_latency:4 in
  let gsym = Gadgets.g_sym_p ~m ~target ~fast_latency:1 ~slow_latency:4 in
  let t8 =
    (Gadgets.theorem8 (Rng.of_int 5) ~layers:5 ~layer_size:4 ~ell:3).Gadgets.t8_graph
  in
  List.iter
    (fun (label, g, source, seed) -> check_rr_parity label g source seed)
    [ ("G(P)", gp, 0, 11); ("G_sym(P)", gsym, 1, 12); ("theorem8 ring", t8, 7, 13) ]

let prop_rr_parity =
  QCheck.Test.make ~name:"scale RR kernel = reference RR broadcast (informed trajectories)"
    ~count:30
    QCheck.(pair (int_range 5 70) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 5 in
      check_rr_parity (Printf.sprintf "er n=%d seed=%d" n seed) g (seed mod n) (seed + 7);
      true)

(* ------------------------------------------------------------------ *)
(* DTG kernel *)

let trajectory_testable = Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)

let check_same_run label (a : Wheel.result) (b : Wheel.result) =
  Alcotest.check (Alcotest.option Alcotest.int) (label ^ " rounds") a.Wheel.rounds b.Wheel.rounds;
  Alcotest.check trajectory_testable (label ^ " trajectory") a.Wheel.history b.Wheel.history;
  checkb (label ^ " metrics") true (a.Wheel.metrics = b.Wheel.metrics);
  checkb (label ^ " informed set") true (Bytes.equal a.Wheel.informed b.Wheel.informed)

let test_dtg_flood_coincides () =
  (* With ell >= l_max the latency filter keeps everything, so k-DTG is
     flooding — bit-identical, through both the kernel constructor and
     the Dtg_local{ell=0} auto-parameter descriptor. *)
  let g = gen_graph 60 123 4 in
  let csr = Csr.of_graph g in
  let flood =
    Wheel.broadcast (Rng.of_int 0) csr ~protocol:Wheel.Flood ~source:3 ~max_rounds:100_000
  in
  let dtg_kernel =
    Wheel.broadcast_kernel (Rng.of_int 0) csr
      ~kernel:(Kernel.dtg_local ~ell:(Csr.max_latency csr) csr)
      ~source:3 ~max_rounds:100_000
  in
  let dtg_auto =
    Wheel.broadcast (Rng.of_int 0) csr
      ~protocol:(Wheel.Dtg_local { ell = 0 })
      ~source:3 ~max_rounds:100_000
  in
  check_same_run "dtg(l_max) = flood" flood dtg_kernel;
  check_same_run "dtg:0 = flood" flood dtg_auto

let test_dtg_confined_to_subgraph () =
  (* Bridges above the threshold are invisible to k-DTG: the rumor
     saturates the source clique of G_ell and goes nowhere else. *)
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:7 in
  let r =
    Wheel.broadcast_kernel (Rng.of_int 1) csr
      ~kernel:(Kernel.dtg_local ~ell:3 csr)
      ~source:0 ~max_rounds:200
  in
  checkb "capped" true (r.Wheel.rounds = None);
  checki "source clique saturated, rest dark" 5 (count_informed r.Wheel.informed);
  for v = 0 to 4 do
    checkb (Printf.sprintf "clique node %d informed" v) true
      (Bytes.get r.Wheel.informed v <> '\000')
  done

(* ------------------------------------------------------------------ *)
(* Fault plans through the new kernels *)

let test_kernel_fault_smoke () =
  let csr = Csr.ring_of_cliques ~cliques:5 ~size:6 ~bridge_latency:3 in
  let crash =
    { Wheel.no_faults with Engine.alive = (fun ~node ~round -> node mod 7 <> 3 || round < 2) }
  in
  let jitter =
    {
      Wheel.no_faults with
      Engine.jitter = (fun ~latency ~round -> latency + ((latency + round) mod 3));
    }
  in
  let mk_rr () =
    let s = Spanner.build (Rng.of_int 3) (Csr.to_graph csr) ~k:2 () in
    let o = Csr.of_oriented_spanner s.Spanner.out_edges in
    Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o
  in
  List.iter
    (fun (label, mk) ->
      (* Kernels are single-run (mutable cursors): fresh instance per run. *)
      let crashed =
        Wheel.broadcast_kernel ~faults:crash (Rng.of_int 2) csr ~kernel:(mk ()) ~source:0
          ~max_rounds:2_000
      in
      checkb (label ^ " crash run executes") true
        (crashed.Wheel.metrics.Engine.initiations > 0);
      checkb (label ^ " crash drops counted") true (crashed.Wheel.metrics.Engine.dropped > 0);
      let jittered =
        Wheel.broadcast_kernel ~faults:jitter ~max_jitter:2 (Rng.of_int 2) csr ~kernel:(mk ())
          ~source:0 ~max_rounds:20_000
      in
      checkb (label ^ " completes under jitter") true (jittered.Wheel.rounds <> None))
    [ ("rr-spanner", mk_rr); ("dtg", fun () -> Kernel.dtg_local ~ell:3 csr) ]

(* ------------------------------------------------------------------ *)
(* Rumor-state kernels: k-rumor all-to-all dissemination *)

module Rumor = Gossip_core.Rumor
module Rumor_store = Gossip_scale.Rumor_store
module Shard = Gossip_scale.Shard
module I32 = Gossip_scale.I32

let test_rumor_all_to_all () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:6 ~bridge_latency:2 in
  let n = Csr.n csr in
  List.iter
    (fun (label, proto, cname, mw) ->
      let reg = Registry.create () in
      let r =
        Wheel.broadcast ~telemetry:reg (Rng.of_int 3) csr ~protocol:proto ~source:0
          ~max_rounds:50_000
      in
      checkb (label ^ " completes") true (r.Wheel.rounds <> None);
      checki (label ^ " everyone complete") n (count_informed r.Wheel.informed);
      (* Per-message words accounted: the tagged counter tracks the
         engine's payload-word total, and the budget gauge declares
         the kernel's per-message bit ceiling. *)
      checki (label ^ " words on wire")
        r.Wheel.metrics.Engine.payload_words
        (Registry.counter_value
           (Registry.counter reg ("wheel.kernel." ^ cname ^ ".words_on_wire")));
      checki (label ^ " bits budget") (32 * mw)
        (Registry.gauge_value (Registry.gauge reg ("wheel.kernel." ^ cname ^ ".bits_budget")));
      checki (label ^ " payload = words x deliveries")
        (mw * r.Wheel.metrics.Engine.deliveries)
        r.Wheel.metrics.Engine.payload_words)
    [
      ("k-rumor", Kernel.K_rumor { k = 5; budget = 2 }, "k-rumor", 2);
      ("rotation", Kernel.Rumor_rotation { k = 5; budget = 2 }, "rotation", 2);
      ("algebraic", Kernel.Algebraic { k = 5; budget = 0 }, "algebraic", 1);
      ("k-rumor k=1", Kernel.K_rumor { k = 1; budget = 1 }, "k-rumor", 1);
    ]

let test_rumor_holdings_after_run () =
  (* After a completed run every node holds every rumor — checked
     through the kernel's own accessor, not the engine's bytes. *)
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:5 ~bridge_latency:2 in
  let n = Csr.n csr in
  let k = 4 in
  let rum = Kernel.k_rumor_push_pull ~k ~budget:2 csr in
  let r =
    Wheel.broadcast_kernel (Rng.of_int 7) csr ~kernel:rum.Kernel.rum_kernel ~source:0
      ~max_rounds:50_000
  in
  checkb "completes" true (r.Wheel.rounds <> None);
  for v = 0 to n - 1 do
    checki (Printf.sprintf "node %d holds all" v) k (rum.Kernel.rum_count ~v);
    for j = 0 to k - 1 do
      checkb (Printf.sprintf "node %d holds rumor %d" v j) true (rum.Kernel.rum_holds ~v ~r:j)
    done
  done

let test_rumor_args_validated () =
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  (match Kernel.k_rumor_push_pull ~k:0 ~budget:1 csr with
  | _ -> Alcotest.fail "k = 0 accepted"
  | exception Invalid_argument _ -> ());
  (match Kernel.rumor_rotation ~k:(Csr.n csr + 1) ~budget:1 csr with
  | _ -> Alcotest.fail "k > n accepted"
  | exception Invalid_argument _ -> ());
  (match Kernel.k_rumor_push_pull ~k:2 ~budget:0 csr with
  | _ -> Alcotest.fail "budget = 0 accepted"
  | exception Invalid_argument _ -> ());
  (* A coefficient vector for k = 40 needs two 30-bit words. *)
  match Kernel.algebraic ~k:9 ~budget:1 (Csr.ring_of_cliques ~cliques:5 ~size:2 ~bridge_latency:1) with
  | exception Invalid_argument _ -> Alcotest.fail "sufficient budget rejected"
  | _ -> (
      match
        Kernel.algebraic ~k:40 ~budget:1
          (Csr.ring_of_cliques ~cliques:20 ~size:2 ~bridge_latency:1)
      with
      | _ -> Alcotest.fail "budget below ceil(k/30) accepted"
      | exception Invalid_argument _ -> ())

(* Satellite: a kernel declaring a message width beyond what the
   int32 mailbox columns can address must be refused up front with
   the typed overflow, not fail deep inside a shard drain. *)
let test_msg_words_ceiling () =
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  let kernel = { (Kernel.push_pull csr) with Kernel.msg_words = Shard.Buf.max_capacity + 1 } in
  match Wheel.create_kernel (Rng.of_int 0) csr ~kernel ~source:0 with
  | _ -> Alcotest.fail "oversized msg_words accepted"
  | exception Shard.Buf_overflow { need; limit } ->
      checki "need is the declared width" (Shard.Buf.max_capacity + 1) need;
      checki "limit is the mailbox ceiling" Shard.Buf.max_capacity limit

(* ------------------------------------------------------------------ *)
(* Boxed-twin parity: the flat bit-packed kernels against the
   Bitset-based reference twins in Gossip_core.Rumor, replaying
   identical operation sequences on both sides. *)

(* Read a packed id list back out of a payload buffer: nonzero words
   are rumor ids + 1, in emission order. *)
let ids_of_buf buf budget =
  let out = ref [] in
  for w = budget - 1 downto 0 do
    let x = I32.get buf w in
    if x > 0 then out := (x - 1) :: !out
  done;
  !out

let prop_rotation_twin =
  QCheck.Test.make ~name:"rotation kernel = boxed Kset twin (operation replay)" ~count:40
    QCheck.(quad (int_range 2 12) (int_range 1 6) (int_range 0 100_000) (int_range 10 60))
    (fun (k, budget, seed, steps) ->
      let n = max 6 (k + (seed mod 5)) in
      let csr = Csr.of_graph (gen_graph n seed 4) in
      let rum = Kernel.rumor_rotation ~k ~budget csr in
      let kern = rum.Kernel.rum_kernel in
      let twin = Rumor.Kset.create ~n ~k in
      let pos = Array.make n 0 in
      (* Mirrored streams: the kernel's random neighbor draw replayed
         twin-side, same as the k-rumor property below. *)
      let rngs_k = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let rngs_t = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let rng = Rng.of_int (seed + 17) in
      let ok = ref true in
      for _ = 1 to steps do
        let u = Rng.int rng n and v = Rng.int rng n in
        match Rng.int rng 10 with
        | 0 | 1 | 2 ->
            let i = kern.Kernel.on_initiate ~rngs:rngs_k ~round:0 ~u ~deg:3 ~informed:true in
            if i <> Rng.int rngs_t.(u) 3 then ok := false;
            pos.(u) <- (pos.(u) + budget) mod k
        | 3 ->
            Rumor_store.forget (Kernel.store kern) u;
            Rumor.Kset.reset twin ~v:u
        | _ ->
            let buf = I32.make budget 0 in
            kern.Kernel.req_pay ~u ~informed:true ~buf ~off:0;
            let expect = Rumor.Kset.emit_window twin ~v:u ~pos:pos.(u) ~budget in
            if ids_of_buf buf budget <> expect then ok := false;
            let dk = kern.Kernel.on_push ~v ~buf ~off:0 in
            let dt = Rumor.Kset.absorb twin ~v expect in
            if dk <> dt then ok := false
      done;
      for v = 0 to n - 1 do
        if rum.Kernel.rum_count ~v <> Rumor.Kset.count twin ~v then ok := false;
        for r = 0 to k - 1 do
          if rum.Kernel.rum_holds ~v ~r <> Rumor.Kset.holds twin ~v ~r then ok := false
        done
      done;
      !ok)

let prop_k_rumor_twin =
  QCheck.Test.make ~name:"k-rumor kernel = boxed Kset twin (mirrored RNG replay)" ~count:40
    QCheck.(quad (int_range 2 12) (int_range 1 6) (int_range 0 100_000) (int_range 10 60))
    (fun (k, budget, seed, steps) ->
      let n = max 6 (k + (seed mod 5)) in
      let csr = Csr.of_graph (gen_graph n seed 4) in
      let rum = Kernel.k_rumor_push_pull ~k ~budget csr in
      let kern = rum.Kernel.rum_kernel in
      let twin = Rumor.Kset.create ~n ~k in
      (* Two identical stream arrays: the kernel consumes one, the twin
         replays the draws from the other. *)
      let rngs_k = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let rngs_t = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let sel = Array.make n 0 in
      let rng = Rng.of_int (seed + 17) in
      let ok = ref true in
      for _ = 1 to steps do
        let u = Rng.int rng n and v = Rng.int rng n in
        match Rng.int rng 10 with
        | 0 | 1 | 2 ->
            let i = kern.Kernel.on_initiate ~rngs:rngs_k ~round:0 ~u ~deg:3 ~informed:true in
            if i <> Rng.int rngs_t.(u) 3 then ok := false;
            sel.(u) <- Rng.int rngs_t.(u) k
        | 3 ->
            Rumor_store.forget (Kernel.store kern) u;
            Rumor.Kset.reset twin ~v:u
        | _ ->
            let buf = I32.make budget 0 in
            kern.Kernel.req_pay ~u ~informed:true ~buf ~off:0;
            let expect = Rumor.Kset.emit_scan twin ~v:u ~start:sel.(u) ~budget in
            if ids_of_buf buf budget <> expect then ok := false;
            let dk = kern.Kernel.on_push ~v ~buf ~off:0 in
            let dt = Rumor.Kset.absorb twin ~v expect in
            if dk <> dt then ok := false
      done;
      for v = 0 to n - 1 do
        if rum.Kernel.rum_count ~v <> Rumor.Kset.count twin ~v then ok := false;
        for r = 0 to k - 1 do
          if rum.Kernel.rum_holds ~v ~r <> Rumor.Kset.holds twin ~v ~r then ok := false
        done
      done;
      !ok)

let coeff_bits = 30

let prop_algebraic_twin =
  QCheck.Test.make ~name:"algebraic kernel = boxed Gf2 twin (mirrored RNG replay)" ~count:40
    QCheck.(triple (int_range 2 64) (int_range 0 100_000) (int_range 10 60))
    (fun (k, seed, steps) ->
      let n = max 6 (k + (seed mod 5)) in
      let cw = (k + coeff_bits - 1) / coeff_bits in
      let csr = Csr.of_graph (gen_graph n seed 4) in
      let alg = Kernel.algebraic ~k ~budget:cw csr in
      let kern = alg.Kernel.alg_kernel in
      let twin = Rumor.Gf2.create ~n ~k in
      let rngs_k = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let rngs_t = Array.init n (fun i -> Rng.of_int (seed + (31 * i))) in
      let coins = Array.init n (fun _ -> Bitset.create k) in
      let rng = Rng.of_int (seed + 17) in
      let ok = ref true in
      let packed_eq buf vec =
        let same = ref true in
        for p = 0 to k - 1 do
          let bit = I32.get buf (p / coeff_bits) land (1 lsl (p mod coeff_bits)) <> 0 in
          if bit <> Bitset.mem vec p then same := false
        done;
        !same
      in
      for _ = 1 to steps do
        let u = Rng.int rng n and v = Rng.int rng n in
        match Rng.int rng 10 with
        | 0 | 1 | 2 ->
            let i = kern.Kernel.on_initiate ~rngs:rngs_k ~round:0 ~u ~deg:3 ~informed:true in
            if i <> Rng.int rngs_t.(u) 3 then ok := false;
            let c = Bitset.create k in
            for w = 0 to cw - 1 do
              let word = Rng.int rngs_t.(u) (1 lsl coeff_bits) in
              for b = 0 to coeff_bits - 1 do
                let p = (w * coeff_bits) + b in
                if p < k && word land (1 lsl b) <> 0 then Bitset.add c p
              done
            done;
            coins.(u) <- c
        | 3 ->
            Rumor_store.forget (Kernel.store kern) u;
            Rumor.Gf2.reset twin ~v:u
        | _ ->
            let buf = I32.make cw 0 in
            kern.Kernel.req_pay ~u ~informed:true ~buf ~off:0;
            let vec = Rumor.Gf2.emit twin ~v:u ~coins:coins.(u) in
            if not (packed_eq buf vec) then ok := false;
            let dk = kern.Kernel.on_push ~v ~buf ~off:0 in
            let dt = Rumor.Gf2.absorb twin ~v vec in
            if dk <> dt then ok := false;
            if alg.Kernel.alg_rank ~v <> Rumor.Gf2.rank twin ~v then ok := false
      done;
      (* The canonical bases themselves coincide row for row. *)
      for v = 0 to n - 1 do
        let packed_rows = alg.Kernel.alg_rows ~v in
        let twin_rows = Array.of_list (Rumor.Gf2.rows twin ~v) in
        if Array.length packed_rows <> Array.length twin_rows then ok := false
        else
          Array.iteri
            (fun i row ->
              for p = 0 to k - 1 do
                let bit = row.(p / coeff_bits) land (1 lsl (p mod coeff_bits)) <> 0 in
                if bit <> Bitset.mem twin_rows.(i) p then ok := false
              done)
            packed_rows
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Sharded-vs-sequential parity for the new kernels *)

(* Same CI matrix convention as test_scale: GOSSIP_PARITY_DOMAINS
   selects the shard counts to sweep. *)
let parity_domains =
  match Sys.getenv_opt "GOSSIP_PARITY_DOMAINS" with
  | None -> [ 1; 2; 3; 4 ]
  | Some s ->
      let ds = String.split_on_char ',' s |> List.filter_map int_of_string_opt in
      if ds = [] then [ 1; 2; 3; 4 ] else ds

let parity_fault_plans =
  [
    ("none", Wheel.no_faults, 0);
    ( "drop",
      {
        Wheel.no_faults with
        Engine.drop =
          (fun ~initiator ~responder ~round -> (initiator + (3 * responder) + round) mod 5 = 0);
      },
      0 );
    ( "crash",
      { Wheel.no_faults with Engine.alive = (fun ~node ~round -> node mod 7 <> 3 || round < 2) },
      0 );
    ( "jitter",
      {
        Wheel.no_faults with
        Engine.jitter = (fun ~latency ~round -> latency + ((latency + round) mod 3));
      },
      2 );
  ]

let test_sharded_kernel_fixed () =
  let csr = Csr.ring_of_cliques ~cliques:6 ~size:7 ~bridge_latency:9 in
  let s = Spanner.build (Rng.of_int 4) (Csr.to_graph csr) ~k:3 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  List.iter
    (fun (name, mk) ->
      let run d =
        Wheel.broadcast_kernel ~domains:d (Rng.of_int 13) csr ~kernel:(mk ()) ~source:5
          ~max_rounds:3_000
      in
      let base = run 1 in
      List.iter
        (fun d -> check_same_run (Printf.sprintf "%s domains=%d" name d) base (run d))
        parity_domains)
    [
      ( "rr-spanner",
        fun () -> Kernel.rr_broadcast ~k:(Csr.oriented_max_latency oriented) oriented );
      ("dtg:1", fun () -> Kernel.dtg_local ~ell:1 csr);
      ("dtg:9", fun () -> Kernel.dtg_local ~ell:9 csr);
    ]

let prop_sharded_kernel_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (spanner/dtg kernels x faults)"
    ~count:25
    QCheck.(triple (int_range 6 70) (int_range 0 100_000) (int_range 0 7))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 6 in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let mk =
        if pick mod 2 = 0 then (
          let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
          let o = Csr.of_oriented_spanner s.Spanner.out_edges in
          fun () -> Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o)
        else fun () -> Kernel.dtg_local ~ell:(1 + (pick / 2)) csr
      in
      let _, faults, max_jitter = List.nth parity_fault_plans (pick / 2) in
      let run d =
        Wheel.broadcast_kernel ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~kernel:(mk ()) ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

(* Dynamic scenarios compiled by lib/dyn — latency drift, churn, and
   the spanner-targeting adversary — obey the same parity contract on
   the kernel path as static fault plans. *)
let prop_sharded_kernel_parity_scenario =
  let module Scenario = Gossip_dyn.Scenario in
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (kernels x dynamic scenarios)"
    ~count:15
    QCheck.(triple (int_range 8 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 6 in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
      let o = Csr.of_oriented_spanner s.Spanner.out_edges in
      let mk () =
        if pick mod 2 = 0 then Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o
        else Kernel.dtg_local ~ell:3 csr
      in
      let scen =
        {
          Scenario.static with
          Scenario.seed;
          rules =
            [
              {
                Scenario.schedule = Scenario.Linear { rate = 0.2; cap = 2.0 };
                filter = Scenario.All;
              };
            ];
          churn =
            (if pick >= 2 then
               [ Scenario.Random_churn { fraction = 0.15; leave = 3; down = 4; period = 2 } ]
             else []);
          adversary = Some { Scenario.budget = 2 };
        }
      in
      let c = Scenario.compile ~oriented:o scen ~csr ~source in
      let run d =
        Wheel.broadcast_kernel ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency
          ~domains:d
          (Rng.of_int (seed + 1))
          csr ~kernel:(mk ()) ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

(* The acceptance property for the rumor-state layer: multi-rumor
   all-to-all runs are bit-identical across shard counts — completion
   trajectory, metrics, final completion bytes, and the words-on-wire
   counter — under every static fault plan.  The algebraic kernel is
   the hard case: its absorb is a full GF(2) reduction, not a
   monotone OR, and only the canonical-RREF discipline makes it
   insertion-order-independent. *)
let prop_rumor_sharded_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (rumor kernels x faults)" ~count:20
    QCheck.(
      quad (int_range 6 50) (int_range 0 100_000) (int_range 0 2) (int_range 0 3))
    (fun (n, seed, which, pick) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let k = 1 + (seed mod min n 8) in
      let budget = 1 + (seed mod 3) in
      let proto, cname =
        match which with
        | 0 -> (Kernel.K_rumor { k; budget }, "k-rumor")
        | 1 -> (Kernel.Rumor_rotation { k; budget }, "rotation")
        | _ -> (Kernel.Algebraic { k; budget = 0 }, "algebraic")
      in
      let _, faults, max_jitter = List.nth parity_fault_plans pick in
      let run d =
        let reg = Registry.create () in
        let r =
          Wheel.broadcast ~faults ~max_jitter ~telemetry:reg ~domains:d
            (Rng.of_int (seed + 1))
            csr ~protocol:proto ~source:(seed mod n) ~max_rounds:400
        in
        ( r,
          Registry.counter_value
            (Registry.counter reg ("wheel.kernel." ^ cname ^ ".words_on_wire")) )
      in
      let base, base_w = run 1 in
      List.for_all
        (fun d ->
          let r, w = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed
          && w = base_w)
        parity_domains)

(* Churn is the rumor-specific hazard: a rejoining node must drop to
   its own rumor (partial subsets, partial spans) on every runtime the
   same way.  Dynamic scenarios with Random_churn drive exactly that
   path. *)
let prop_rumor_sharded_parity_churn =
  let module Scenario = Gossip_dyn.Scenario in
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (rumor kernels x churn scenarios)"
    ~count:10
    QCheck.(triple (int_range 8 40) (int_range 0 100_000) (int_range 0 2))
    (fun (n, seed, which) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let k = 1 + (seed mod min n 6) in
      let proto =
        match which with
        | 0 -> Kernel.K_rumor { k; budget = 2 }
        | 1 -> Kernel.Rumor_rotation { k; budget = 2 }
        | _ -> Kernel.Algebraic { k; budget = 0 }
      in
      let scen =
        {
          Scenario.static with
          Scenario.seed;
          churn = [ Scenario.Random_churn { fraction = 0.2; leave = 3; down = 4; period = 2 } ];
        }
      in
      let c = Scenario.compile scen ~csr ~source:0 in
      let run d =
        Wheel.broadcast ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency ~domains:d
          (Rng.of_int (seed + 1))
          csr ~protocol:proto ~source:0 ~max_rounds:300
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

(* ------------------------------------------------------------------ *)
(* Kernel-tagged telemetry *)

let test_kernel_tagged_telemetry () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:6 ~bridge_latency:2 in
  let s = Spanner.build (Rng.of_int 9) (Csr.to_graph csr) ~k:2 () in
  let o = Csr.of_oriented_spanner s.Spanner.out_edges in
  let reg = Registry.create () in
  let r =
    Wheel.broadcast_kernel ~telemetry:reg (Rng.of_int 2) csr
      ~kernel:(Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o)
      ~source:0 ~max_rounds:10_000
  in
  let c name = Registry.counter_value (Registry.counter reg name) in
  checki "tagged deliveries = metrics" r.Wheel.metrics.Engine.deliveries
    (c "wheel.kernel.rr-spanner.deliveries");
  checki "tagged initiations = metrics" r.Wheel.metrics.Engine.initiations
    (c "wheel.kernel.rr-spanner.initiations");
  (* The classic protocols are tagged by their kernel name too. *)
  let reg2 = Registry.create () in
  let f =
    Wheel.broadcast ~telemetry:reg2 (Rng.of_int 2) csr ~protocol:Wheel.Flood ~source:0
      ~max_rounds:10_000
  in
  checki "flood tagged deliveries" f.Wheel.metrics.Engine.deliveries
    (Registry.counter_value (Registry.counter reg2 "wheel.kernel.flood.deliveries"))

(* ------------------------------------------------------------------ *)
(* Termination-check kernel vs the boxed reference (Lemma 18) *)

module Check = Gossip_core.Termination_check

(* A seed-derived informed pattern with the source always set, so the
   check exercises flagged, mismatching, and clean nodes alike. *)
let informed_pattern n seed =
  Array.init n (fun v -> v = 0 || (v + (seed * 7)) mod 3 <> 0)

let check_check_parity label g seed informed =
  let n = Graph.n g in
  let csr = Csr.of_graph g in
  let k = Graph.max_latency g in
  let s = Spanner.build (Rng.of_int seed) g ~k:2 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  let core = Check.run_single ~base:g ~out_edges:s.Spanner.out_edges ~k ~informed in
  let bytes = Bytes.init n (fun v -> if informed.(v) then '\001' else '\000') in
  let scale =
    Check.run_scale (Rng.of_int (seed + 1)) csr ~oriented ~k ~informed:bytes
  in
  checki (label ^ " rounds") core.Check.rounds scale.Check.sc_rounds;
  checkb (label ^ " unanimous") core.Check.unanimous scale.Check.sc_unanimous;
  checkb (label ^ " any-failed") (Array.exists Fun.id core.Check.failed)
    scale.Check.sc_any_failed;
  for v = 0 to n - 1 do
    if core.Check.failed.(v) <> (Bytes.get scale.Check.sc_failed v <> '\000') then
      Alcotest.failf "%s: node %d verdict diverges from the reference" label v
  done

let test_check_parity_fixed () =
  let g = gen_graph 40 31 4 in
  let n = Graph.n g in
  (* Everyone informed: clean, unanimous verdict on both runtimes. *)
  check_check_parity "all-informed" g 31 (Array.make n true);
  (* One dark node: its neighbors flag, the verdict floods. *)
  let holey = Array.make n true in
  holey.(n / 2) <- false;
  check_check_parity "one-dark" g 31 holey

let prop_check_parity =
  QCheck.Test.make ~name:"scale termination-check kernel = boxed reference check" ~count:30
    QCheck.(pair (int_range 5 60) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 5 in
      check_check_parity
        (Printf.sprintf "er n=%d seed=%d" n seed)
        g (seed + 3)
        (informed_pattern n seed);
      true)

let prop_check_sharded_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (check kernel x faults)" ~count:20
    QCheck.(triple (int_range 6 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let k = Graph.max_latency g in
      let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
      let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
      let informed = Bytes.init n (fun v -> if (v + seed) mod 4 = 0 then '\000' else '\001') in
      let _, faults, max_jitter = List.nth parity_fault_plans pick in
      let run d =
        Check.run_scale ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~oriented ~k ~informed
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Check.sc_rounds = base.Check.sc_rounds
          && r.Check.sc_metrics = base.Check.sc_metrics
          && Bytes.equal r.Check.sc_failed base.Check.sc_failed)
        parity_domains)

let prop_discovery_sharded_parity =
  let module Discovery = Gossip_core.Discovery in
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (discovery kernel x faults)"
    ~count:20
    QCheck.(triple (int_range 6 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let _, faults, max_jitter = List.nth parity_fault_plans pick in
      let run d =
        Discovery.probe_scale ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~d_bound:3
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Discovery.s_rounds = base.Discovery.s_rounds
          && r.Discovery.s_lat = base.Discovery.s_lat
          && Csr.equal r.Discovery.s_discovered base.Discovery.s_discovered)
        parity_domains)

(* ------------------------------------------------------------------ *)
(* EID on the scale engine *)

let test_eid_scale_smoke () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:2 in
  let d = Paths.weighted_diameter (Csr.to_graph csr) in
  let r = Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d ~source:0 () in
  checkb "success with d = diameter" true r.Eid.scale_success;
  checki "everyone informed" (Csr.n csr) (count_informed r.Eid.scale_informed);
  checkb "spanner nonempty" true (r.Eid.scale_spanner_edges > 0);
  checkb "out-degree bound witnessed" true (r.Eid.scale_spanner_out_degree >= 1);
  checkb "rounds accounted" true (r.Eid.scale_rounds >= r.Eid.scale_dtg_rounds);
  (* The run is deterministic across shard counts, like the engine. *)
  let r2 = Eid.run_known_diameter_scale ~domains:2 (Rng.of_int 7) csr ~d ~source:0 () in
  checki "sharded rounds identical" r.Eid.scale_rounds r2.Eid.scale_rounds;
  checkb "sharded informed identical" true
    (Bytes.equal r.Eid.scale_informed r2.Eid.scale_informed);
  (* d below the bridge latency: G_d is disconnected, the pipeline
     honestly reports failure confined to the source component. *)
  let stuck = Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d:1 ~source:0 () in
  checkb "d = 1 cannot cross bridges" false stuck.Eid.scale_success;
  checki "confined to the source clique" 5 (count_informed stuck.Eid.scale_informed);
  match Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d:0 ~source:0 () with
  | _ -> Alcotest.fail "d = 0 accepted"
  | exception Invalid_argument _ -> ()

(* The full Theorem 20 chain with zero latency knowledge: discovery ->
   T(k) schedule -> spanner RR -> termination check, guess-and-double
   outer loop, bit-identical across shard counts. *)
let test_unknown_eid_scale () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:2 in
  let r = Eid.run_unknown_scale (Rng.of_int 11) csr ~source:0 () in
  checkb "success with no a-priori latencies" true r.Eid.u_success;
  (* Early attempts with too-small k may split their verdicts (Lemma 18
     unanimity needs the flood to cover the graph); the accepting
     attempt is always unanimous — no node failed. *)
  (match List.rev r.Eid.u_attempts with
  | last :: _ ->
      checkb "accepting attempt unanimous" true last.Eid.ua_unanimous;
      checkb "accepting attempt clean" false last.Eid.ua_failed
  | [] -> Alcotest.fail "no attempts recorded");
  checki "everyone informed" (Csr.n csr) (count_informed r.Eid.u_informed);
  checkb "at least one attempt" true (r.Eid.u_attempts <> []);
  (* Guesses double: k = 1, 2, 4, ... *)
  List.iteri
    (fun i a -> checki (Printf.sprintf "attempt %d guess" i) (1 lsl i) a.Eid.ua_k)
    r.Eid.u_attempts;
  (* Rounds account for every phase of every attempt. *)
  let budget =
    List.fold_left
      (fun acc a ->
        acc + a.Eid.ua_discovery_rounds + a.Eid.ua_schedule_rounds + a.Eid.ua_rr_rounds
        + a.Eid.ua_check_rounds)
      0 r.Eid.u_attempts
  in
  checki "rounds = sum over attempts and phases" budget r.Eid.u_rounds;
  List.iter
    (fun d ->
      let rd = Eid.run_unknown_scale ~domains:d (Rng.of_int 11) csr ~source:0 () in
      checki (Printf.sprintf "rounds domains=%d" d) r.Eid.u_rounds rd.Eid.u_rounds;
      checki (Printf.sprintf "k_final domains=%d" d) r.Eid.u_k_final rd.Eid.u_k_final;
      checkb (Printf.sprintf "informed domains=%d" d) true
        (Bytes.equal r.Eid.u_informed rd.Eid.u_informed))
    parity_domains

let test_unified_scale () =
  let module Dissemination = Gossip_core.Dissemination in
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:6 ~bridge_latency:2 in
  let run d =
    Dissemination.broadcast_scale ?domains:d (Rng.of_int 5) csr ~source:0
      ~max_rounds:100_000 ()
  in
  let r = run None in
  checkb "unified succeeds" true r.Dissemination.b_success;
  checki "everyone informed" (Csr.n csr) (count_informed r.Dissemination.b_informed);
  (* The winner really is the cheaper branch. *)
  (match r.Dissemination.b_pushpull_rounds with
  | Some pp ->
      checki "min of the branches" (min pp r.Dissemination.b_spanner_rounds)
        r.Dissemination.b_rounds
  | None -> checki "spanner wins by default" r.Dissemination.b_spanner_rounds
              r.Dissemination.b_rounds);
  List.iter
    (fun d ->
      let rd = run (Some d) in
      checki (Printf.sprintf "rounds domains=%d" d) r.Dissemination.b_rounds
        rd.Dissemination.b_rounds;
      checkb (Printf.sprintf "winner domains=%d" d) true
        (r.Dissemination.b_winner = rd.Dissemination.b_winner);
      checkb (Printf.sprintf "informed domains=%d" d) true
        (Bytes.equal r.Dissemination.b_informed rd.Dissemination.b_informed))
    parity_domains

let () =
  Alcotest.run "gossip_kernel"
    [
      ( "protocol",
        [
          Alcotest.test_case "name round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "Rr_spanner needs a spanner" `Quick
            test_of_protocol_rr_needs_spanner;
          qtest prop_protocol_roundtrip;
        ] );
      ( "rumor",
        [
          Alcotest.test_case "all-to-all completion + word accounting" `Quick
            test_rumor_all_to_all;
          Alcotest.test_case "holdings after a run" `Quick test_rumor_holdings_after_run;
          Alcotest.test_case "argument validation" `Quick test_rumor_args_validated;
          Alcotest.test_case "msg_words ceiling" `Quick test_msg_words_ceiling;
          qtest prop_rotation_twin;
          qtest prop_k_rumor_twin;
          qtest prop_algebraic_twin;
        ] );
      ( "spanner-oriented",
        [
          qtest prop_spanner_out_degree;
          qtest prop_oriented_roundtrip;
          Alcotest.test_case "out-degree bound enforced" `Quick test_out_degree_bound_enforced;
        ] );
      ( "rr-parity",
        [
          Alcotest.test_case "gadget families" `Quick test_rr_parity_gadgets;
          qtest prop_rr_parity;
        ] );
      ( "dtg",
        [
          Alcotest.test_case "dtg = flood at l_max" `Quick test_dtg_flood_coincides;
          Alcotest.test_case "confined to G_ell" `Quick test_dtg_confined_to_subgraph;
        ] );
      ("faults", [ Alcotest.test_case "crash + jitter smoke" `Quick test_kernel_fault_smoke ]);
      ( "sharded-kernels",
        [
          Alcotest.test_case "fixed cases" `Quick test_sharded_kernel_fixed;
          qtest prop_sharded_kernel_parity;
          qtest prop_sharded_kernel_parity_scenario;
          qtest prop_rumor_sharded_parity;
          qtest prop_rumor_sharded_parity_churn;
          qtest prop_check_sharded_parity;
          qtest prop_discovery_sharded_parity;
        ] );
      ( "check-parity",
        [
          Alcotest.test_case "fixed cases" `Quick test_check_parity_fixed;
          qtest prop_check_parity;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "kernel-tagged counters" `Quick test_kernel_tagged_telemetry ] );
      ( "eid-scale",
        [
          Alcotest.test_case "known-diameter pipeline" `Quick test_eid_scale_smoke;
          Alcotest.test_case "unknown-latency chain" `Quick test_unknown_eid_scale;
          Alcotest.test_case "unified race" `Quick test_unified_scale;
        ] );
    ]
