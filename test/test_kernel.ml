(* Tests for the protocol-kernel layer of lib/scale: protocol
   descriptors, the oriented-spanner packing (Lemma 15 bound), the
   trajectory parity of the scale RR kernel against the reference
   Gossip_core.Rr_broadcast on the paper's gadget families, the
   DTG/flood coincidence, fault-plan and domain-sharding coverage for
   the new kernels, and the EID-at-scale pipeline. *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Gadgets = Gossip_graph.Gadgets
module Engine = Gossip_sim.Engine
module Csr = Gossip_scale.Csr
module Kernel = Gossip_scale.Kernel
module Wheel = Gossip_scale.Wheel_engine
module Registry = Gossip_obs.Registry
module Spanner = Gossip_core.Spanner
module Rr = Gossip_core.Rr_broadcast
module Eid = Gossip_core.Eid

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* Connected G(n, p) with mixed latencies, the standard parity fodder. *)
let gen_graph n seed lmax =
  let grng = Rng.of_int seed in
  let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
  Gen.with_latencies grng (Gen.Uniform (1, lmax)) (Gen.erdos_renyi_connected grng ~n ~p)

let count_informed bytes =
  let c = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr c) bytes;
  !c

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

let test_protocol_roundtrip () =
  List.iter
    (fun p ->
      let s = Kernel.protocol_name p in
      match Kernel.protocol_of_string s with
      | Some p' -> checkb (s ^ " round-trips") true (p = p')
      | None -> Alcotest.failf "%s does not parse back" s)
    [
      Kernel.Push_pull;
      Kernel.Flood;
      Kernel.Random_contact;
      Kernel.Rr_spanner { stretch_k = 0 };
      Kernel.Rr_spanner { stretch_k = 3 };
      Kernel.Dtg_local { ell = 0 };
      Kernel.Dtg_local { ell = 5 };
      Kernel.Unknown_eid;
      Kernel.Unified;
    ];
  (* Parameterless forms mean "choose automatically". *)
  checkb "bare rr-spanner" true
    (Kernel.protocol_of_string "rr-spanner" = Some (Kernel.Rr_spanner { stretch_k = 0 }));
  checkb "bare dtg" true
    (Kernel.protocol_of_string "dtg" = Some (Kernel.Dtg_local { ell = 0 }));
  List.iter
    (fun s -> checkb ("\"" ^ s ^ "\" rejected") true (Kernel.protocol_of_string s = None))
    [ "nope"; "rr-spanner:0"; "rr-spanner:x"; "dtg:-2"; "dtg:"; "" ];
  checki "known protocols listed" 7 (List.length Kernel.known_protocols);
  (* The engine and the sweep both delegate to this one parser. *)
  checkb "wheel re-export is the same table" true
    (Wheel.protocol_of_string "dtg:3" = Some (Wheel.Dtg_local { ell = 3 }));
  (* The chain descriptors name multi-phase drivers, not single
     kernels: the kernel factory must refuse them. *)
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  List.iter
    (fun p ->
      match Kernel.of_protocol csr p with
      | _ -> Alcotest.failf "%s built as a single kernel" (Kernel.protocol_name p)
      | exception Invalid_argument _ -> ())
    [ Kernel.Unknown_eid; Kernel.Unified ]

let test_of_protocol_rr_needs_spanner () =
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:1 in
  match Kernel.of_protocol csr (Kernel.Rr_spanner { stretch_k = 2 }) with
  | _ -> Alcotest.fail "Rr_spanner built without a spanner"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Oriented spanner packing *)

(* Lemma 15's precondition: the oriented Baswana–Sen out-degree stays
   under 8 n^(1/k) ln n, and the flat packing preserves it exactly. *)
let prop_spanner_out_degree =
  QCheck.Test.make ~name:"oriented Baswana-Sen obeys the Lemma 15 out-degree bound" ~count:30
    QCheck.(triple (int_range 8 120) (int_range 0 100_000) (int_range 2 4))
    (fun (n, seed, k) ->
      let g = gen_graph n seed 5 in
      let s = Spanner.build (Rng.of_int (seed + 1)) g ~k () in
      let bound =
        int_of_float
          (ceil (8.0 *. (float_of_int n ** (1.0 /. float_of_int k)) *. log (float_of_int n)))
      in
      let o = Csr.of_oriented_spanner ~out_degree_bound:bound s.Spanner.out_edges in
      Csr.oriented_max_out_degree o = Spanner.max_out_degree s
      && Csr.oriented_max_out_degree o <= bound)

let prop_oriented_roundtrip =
  QCheck.Test.make ~name:"of_oriented_spanner packs edge-for-edge in row order" ~count:40
    QCheck.(pair (int_range 5 80) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 6 in
      let s = Spanner.build (Rng.of_int (seed + 2)) g ~k:3 () in
      let o = Csr.of_oriented_spanner s.Spanner.out_edges in
      let total = Array.fold_left (fun a r -> a + Array.length r) 0 s.Spanner.out_edges in
      let ok = ref (Csr.oriented_n o = n && Csr.oriented_edge_count o = total) in
      Array.iteri
        (fun v row ->
          let i = ref 0 in
          Csr.oriented_iter_out o v (fun peer lat ->
              (if !i >= Array.length row then ok := false
               else
                 let p, l = row.(!i) in
                 if p <> peer || l <> lat then ok := false);
              incr i);
          if !i <> Array.length row then ok := false)
        s.Spanner.out_edges;
      !ok)

let test_out_degree_bound_enforced () =
  let rows = [| [| (1, 1); (2, 1); (3, 2) |]; [||]; [||]; [||] |] in
  (match Csr.of_oriented_spanner ~out_degree_bound:2 rows with
  | _ -> Alcotest.fail "bound violation accepted"
  | exception Invalid_argument _ -> ());
  checki "bound met passes" 3
    (Csr.oriented_edge_count (Csr.of_oriented_spanner ~out_degree_bound:3 rows))

(* ------------------------------------------------------------------ *)
(* RR kernel vs reference Rr_broadcast: trajectory parity *)

(* Same orientation, same finite window, same seedless round-robin: the
   wheel's informed bit must evolve exactly like membership of the
   source rumor in the reference engine's sets. *)
let check_rr_parity label g source seed =
  let n = Graph.n g in
  let csr = Csr.of_graph g in
  let k = Graph.max_latency g in
  let s = Spanner.build (Rng.of_int seed) g ~k:2 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  let delta_out = Csr.oriented_max_out_degree (Csr.oriented_filter_le oriented k) in
  let iterations = (k * delta_out) + k in
  let sets =
    Array.init n (fun v ->
        let b = Bitset.create n in
        if v = source then Bitset.add b source;
        b)
  in
  let core = Rr.run ~base:g ~out_edges:s.Spanner.out_edges ~k ~rumors:sets ~iterations () in
  let kernel = Kernel.rr_broadcast ~iterations ~k oriented in
  let t = Wheel.create_kernel (Rng.of_int 0) csr ~kernel ~source in
  for _ = 1 to iterations + k do
    Wheel.step t
  done;
  for v = 0 to n - 1 do
    if Wheel.informed t v <> Bitset.mem core.Rr.sets.(v) source then
      Alcotest.failf "%s: node %d informed bit diverges from the reference" label v
  done;
  checki (label ^ " initiations") core.Rr.metrics.Engine.initiations
    (Wheel.metrics t).Engine.initiations;
  checki (label ^ " deliveries") core.Rr.metrics.Engine.deliveries
    (Wheel.metrics t).Engine.deliveries

let test_rr_parity_gadgets () =
  let m = 6 in
  let target = Gadgets.singleton_target (Rng.of_int 77) ~m in
  let gp = Gadgets.g_p ~m ~target ~fast_latency:1 ~slow_latency:4 in
  let gsym = Gadgets.g_sym_p ~m ~target ~fast_latency:1 ~slow_latency:4 in
  let t8 =
    (Gadgets.theorem8 (Rng.of_int 5) ~layers:5 ~layer_size:4 ~ell:3).Gadgets.t8_graph
  in
  List.iter
    (fun (label, g, source, seed) -> check_rr_parity label g source seed)
    [ ("G(P)", gp, 0, 11); ("G_sym(P)", gsym, 1, 12); ("theorem8 ring", t8, 7, 13) ]

let prop_rr_parity =
  QCheck.Test.make ~name:"scale RR kernel = reference RR broadcast (informed trajectories)"
    ~count:30
    QCheck.(pair (int_range 5 70) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 5 in
      check_rr_parity (Printf.sprintf "er n=%d seed=%d" n seed) g (seed mod n) (seed + 7);
      true)

(* ------------------------------------------------------------------ *)
(* DTG kernel *)

let trajectory_testable = Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)

let check_same_run label (a : Wheel.result) (b : Wheel.result) =
  Alcotest.check (Alcotest.option Alcotest.int) (label ^ " rounds") a.Wheel.rounds b.Wheel.rounds;
  Alcotest.check trajectory_testable (label ^ " trajectory") a.Wheel.history b.Wheel.history;
  checkb (label ^ " metrics") true (a.Wheel.metrics = b.Wheel.metrics);
  checkb (label ^ " informed set") true (Bytes.equal a.Wheel.informed b.Wheel.informed)

let test_dtg_flood_coincides () =
  (* With ell >= l_max the latency filter keeps everything, so k-DTG is
     flooding — bit-identical, through both the kernel constructor and
     the Dtg_local{ell=0} auto-parameter descriptor. *)
  let g = gen_graph 60 123 4 in
  let csr = Csr.of_graph g in
  let flood =
    Wheel.broadcast (Rng.of_int 0) csr ~protocol:Wheel.Flood ~source:3 ~max_rounds:100_000
  in
  let dtg_kernel =
    Wheel.broadcast_kernel (Rng.of_int 0) csr
      ~kernel:(Kernel.dtg_local ~ell:(Csr.max_latency csr) csr)
      ~source:3 ~max_rounds:100_000
  in
  let dtg_auto =
    Wheel.broadcast (Rng.of_int 0) csr
      ~protocol:(Wheel.Dtg_local { ell = 0 })
      ~source:3 ~max_rounds:100_000
  in
  check_same_run "dtg(l_max) = flood" flood dtg_kernel;
  check_same_run "dtg:0 = flood" flood dtg_auto

let test_dtg_confined_to_subgraph () =
  (* Bridges above the threshold are invisible to k-DTG: the rumor
     saturates the source clique of G_ell and goes nowhere else. *)
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:7 in
  let r =
    Wheel.broadcast_kernel (Rng.of_int 1) csr
      ~kernel:(Kernel.dtg_local ~ell:3 csr)
      ~source:0 ~max_rounds:200
  in
  checkb "capped" true (r.Wheel.rounds = None);
  checki "source clique saturated, rest dark" 5 (count_informed r.Wheel.informed);
  for v = 0 to 4 do
    checkb (Printf.sprintf "clique node %d informed" v) true
      (Bytes.get r.Wheel.informed v <> '\000')
  done

(* ------------------------------------------------------------------ *)
(* Fault plans through the new kernels *)

let test_kernel_fault_smoke () =
  let csr = Csr.ring_of_cliques ~cliques:5 ~size:6 ~bridge_latency:3 in
  let crash =
    { Wheel.no_faults with Engine.alive = (fun ~node ~round -> node mod 7 <> 3 || round < 2) }
  in
  let jitter =
    {
      Wheel.no_faults with
      Engine.jitter = (fun ~latency ~round -> latency + ((latency + round) mod 3));
    }
  in
  let mk_rr () =
    let s = Spanner.build (Rng.of_int 3) (Csr.to_graph csr) ~k:2 () in
    let o = Csr.of_oriented_spanner s.Spanner.out_edges in
    Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o
  in
  List.iter
    (fun (label, mk) ->
      (* Kernels are single-run (mutable cursors): fresh instance per run. *)
      let crashed =
        Wheel.broadcast_kernel ~faults:crash (Rng.of_int 2) csr ~kernel:(mk ()) ~source:0
          ~max_rounds:2_000
      in
      checkb (label ^ " crash run executes") true
        (crashed.Wheel.metrics.Engine.initiations > 0);
      checkb (label ^ " crash drops counted") true (crashed.Wheel.metrics.Engine.dropped > 0);
      let jittered =
        Wheel.broadcast_kernel ~faults:jitter ~max_jitter:2 (Rng.of_int 2) csr ~kernel:(mk ())
          ~source:0 ~max_rounds:20_000
      in
      checkb (label ^ " completes under jitter") true (jittered.Wheel.rounds <> None))
    [ ("rr-spanner", mk_rr); ("dtg", fun () -> Kernel.dtg_local ~ell:3 csr) ]

(* ------------------------------------------------------------------ *)
(* Sharded-vs-sequential parity for the new kernels *)

(* Same CI matrix convention as test_scale: GOSSIP_PARITY_DOMAINS
   selects the shard counts to sweep. *)
let parity_domains =
  match Sys.getenv_opt "GOSSIP_PARITY_DOMAINS" with
  | None -> [ 1; 2; 3; 4 ]
  | Some s ->
      let ds = String.split_on_char ',' s |> List.filter_map int_of_string_opt in
      if ds = [] then [ 1; 2; 3; 4 ] else ds

let parity_fault_plans =
  [
    ("none", Wheel.no_faults, 0);
    ( "drop",
      {
        Wheel.no_faults with
        Engine.drop =
          (fun ~initiator ~responder ~round -> (initiator + (3 * responder) + round) mod 5 = 0);
      },
      0 );
    ( "crash",
      { Wheel.no_faults with Engine.alive = (fun ~node ~round -> node mod 7 <> 3 || round < 2) },
      0 );
    ( "jitter",
      {
        Wheel.no_faults with
        Engine.jitter = (fun ~latency ~round -> latency + ((latency + round) mod 3));
      },
      2 );
  ]

let test_sharded_kernel_fixed () =
  let csr = Csr.ring_of_cliques ~cliques:6 ~size:7 ~bridge_latency:9 in
  let s = Spanner.build (Rng.of_int 4) (Csr.to_graph csr) ~k:3 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  List.iter
    (fun (name, mk) ->
      let run d =
        Wheel.broadcast_kernel ~domains:d (Rng.of_int 13) csr ~kernel:(mk ()) ~source:5
          ~max_rounds:3_000
      in
      let base = run 1 in
      List.iter
        (fun d -> check_same_run (Printf.sprintf "%s domains=%d" name d) base (run d))
        parity_domains)
    [
      ( "rr-spanner",
        fun () -> Kernel.rr_broadcast ~k:(Csr.oriented_max_latency oriented) oriented );
      ("dtg:1", fun () -> Kernel.dtg_local ~ell:1 csr);
      ("dtg:9", fun () -> Kernel.dtg_local ~ell:9 csr);
    ]

let prop_sharded_kernel_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (spanner/dtg kernels x faults)"
    ~count:25
    QCheck.(triple (int_range 6 70) (int_range 0 100_000) (int_range 0 7))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 6 in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let mk =
        if pick mod 2 = 0 then (
          let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
          let o = Csr.of_oriented_spanner s.Spanner.out_edges in
          fun () -> Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o)
        else fun () -> Kernel.dtg_local ~ell:(1 + (pick / 2)) csr
      in
      let _, faults, max_jitter = List.nth parity_fault_plans (pick / 2) in
      let run d =
        Wheel.broadcast_kernel ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~kernel:(mk ()) ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

(* Dynamic scenarios compiled by lib/dyn — latency drift, churn, and
   the spanner-targeting adversary — obey the same parity contract on
   the kernel path as static fault plans. *)
let prop_sharded_kernel_parity_scenario =
  let module Scenario = Gossip_dyn.Scenario in
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (kernels x dynamic scenarios)"
    ~count:15
    QCheck.(triple (int_range 8 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 6 in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
      let o = Csr.of_oriented_spanner s.Spanner.out_edges in
      let mk () =
        if pick mod 2 = 0 then Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o
        else Kernel.dtg_local ~ell:3 csr
      in
      let scen =
        {
          Scenario.static with
          Scenario.seed;
          rules =
            [
              {
                Scenario.schedule = Scenario.Linear { rate = 0.2; cap = 2.0 };
                filter = Scenario.All;
              };
            ];
          churn =
            (if pick >= 2 then
               [ Scenario.Random_churn { fraction = 0.15; leave = 3; down = 4; period = 2 } ]
             else []);
          adversary = Some { Scenario.budget = 2 };
        }
      in
      let c = Scenario.compile ~oriented:o scen ~csr ~source in
      let run d =
        Wheel.broadcast_kernel ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency
          ~domains:d
          (Rng.of_int (seed + 1))
          csr ~kernel:(mk ()) ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

(* ------------------------------------------------------------------ *)
(* Kernel-tagged telemetry *)

let test_kernel_tagged_telemetry () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:6 ~bridge_latency:2 in
  let s = Spanner.build (Rng.of_int 9) (Csr.to_graph csr) ~k:2 () in
  let o = Csr.of_oriented_spanner s.Spanner.out_edges in
  let reg = Registry.create () in
  let r =
    Wheel.broadcast_kernel ~telemetry:reg (Rng.of_int 2) csr
      ~kernel:(Kernel.rr_broadcast ~k:(Csr.oriented_max_latency o) o)
      ~source:0 ~max_rounds:10_000
  in
  let c name = Registry.counter_value (Registry.counter reg name) in
  checki "tagged deliveries = metrics" r.Wheel.metrics.Engine.deliveries
    (c "wheel.kernel.rr-spanner.deliveries");
  checki "tagged initiations = metrics" r.Wheel.metrics.Engine.initiations
    (c "wheel.kernel.rr-spanner.initiations");
  (* The classic protocols are tagged by their kernel name too. *)
  let reg2 = Registry.create () in
  let f =
    Wheel.broadcast ~telemetry:reg2 (Rng.of_int 2) csr ~protocol:Wheel.Flood ~source:0
      ~max_rounds:10_000
  in
  checki "flood tagged deliveries" f.Wheel.metrics.Engine.deliveries
    (Registry.counter_value (Registry.counter reg2 "wheel.kernel.flood.deliveries"))

(* ------------------------------------------------------------------ *)
(* Termination-check kernel vs the boxed reference (Lemma 18) *)

module Check = Gossip_core.Termination_check

(* A seed-derived informed pattern with the source always set, so the
   check exercises flagged, mismatching, and clean nodes alike. *)
let informed_pattern n seed =
  Array.init n (fun v -> v = 0 || (v + (seed * 7)) mod 3 <> 0)

let check_check_parity label g seed informed =
  let n = Graph.n g in
  let csr = Csr.of_graph g in
  let k = Graph.max_latency g in
  let s = Spanner.build (Rng.of_int seed) g ~k:2 () in
  let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
  let core = Check.run_single ~base:g ~out_edges:s.Spanner.out_edges ~k ~informed in
  let bytes = Bytes.init n (fun v -> if informed.(v) then '\001' else '\000') in
  let scale =
    Check.run_scale (Rng.of_int (seed + 1)) csr ~oriented ~k ~informed:bytes
  in
  checki (label ^ " rounds") core.Check.rounds scale.Check.sc_rounds;
  checkb (label ^ " unanimous") core.Check.unanimous scale.Check.sc_unanimous;
  checkb (label ^ " any-failed") (Array.exists Fun.id core.Check.failed)
    scale.Check.sc_any_failed;
  for v = 0 to n - 1 do
    if core.Check.failed.(v) <> (Bytes.get scale.Check.sc_failed v <> '\000') then
      Alcotest.failf "%s: node %d verdict diverges from the reference" label v
  done

let test_check_parity_fixed () =
  let g = gen_graph 40 31 4 in
  let n = Graph.n g in
  (* Everyone informed: clean, unanimous verdict on both runtimes. *)
  check_check_parity "all-informed" g 31 (Array.make n true);
  (* One dark node: its neighbors flag, the verdict floods. *)
  let holey = Array.make n true in
  holey.(n / 2) <- false;
  check_check_parity "one-dark" g 31 holey

let prop_check_parity =
  QCheck.Test.make ~name:"scale termination-check kernel = boxed reference check" ~count:30
    QCheck.(pair (int_range 5 60) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = gen_graph n seed 5 in
      check_check_parity
        (Printf.sprintf "er n=%d seed=%d" n seed)
        g (seed + 3)
        (informed_pattern n seed);
      true)

let prop_check_sharded_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (check kernel x faults)" ~count:20
    QCheck.(triple (int_range 6 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let k = Graph.max_latency g in
      let s = Spanner.build (Rng.of_int (seed + 3)) g ~k:2 () in
      let oriented = Csr.of_oriented_spanner s.Spanner.out_edges in
      let informed = Bytes.init n (fun v -> if (v + seed) mod 4 = 0 then '\000' else '\001') in
      let _, faults, max_jitter = List.nth parity_fault_plans pick in
      let run d =
        Check.run_scale ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~oriented ~k ~informed
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Check.sc_rounds = base.Check.sc_rounds
          && r.Check.sc_metrics = base.Check.sc_metrics
          && Bytes.equal r.Check.sc_failed base.Check.sc_failed)
        parity_domains)

let prop_discovery_sharded_parity =
  let module Discovery = Gossip_core.Discovery in
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (discovery kernel x faults)"
    ~count:20
    QCheck.(triple (int_range 6 60) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = gen_graph n seed 5 in
      let csr = Csr.of_graph g in
      let _, faults, max_jitter = List.nth parity_fault_plans pick in
      let run d =
        Discovery.probe_scale ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~d_bound:3
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Discovery.s_rounds = base.Discovery.s_rounds
          && r.Discovery.s_lat = base.Discovery.s_lat
          && Csr.equal r.Discovery.s_discovered base.Discovery.s_discovered)
        parity_domains)

(* ------------------------------------------------------------------ *)
(* EID on the scale engine *)

let test_eid_scale_smoke () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:2 in
  let d = Paths.weighted_diameter (Csr.to_graph csr) in
  let r = Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d ~source:0 () in
  checkb "success with d = diameter" true r.Eid.scale_success;
  checki "everyone informed" (Csr.n csr) (count_informed r.Eid.scale_informed);
  checkb "spanner nonempty" true (r.Eid.scale_spanner_edges > 0);
  checkb "out-degree bound witnessed" true (r.Eid.scale_spanner_out_degree >= 1);
  checkb "rounds accounted" true (r.Eid.scale_rounds >= r.Eid.scale_dtg_rounds);
  (* The run is deterministic across shard counts, like the engine. *)
  let r2 = Eid.run_known_diameter_scale ~domains:2 (Rng.of_int 7) csr ~d ~source:0 () in
  checki "sharded rounds identical" r.Eid.scale_rounds r2.Eid.scale_rounds;
  checkb "sharded informed identical" true
    (Bytes.equal r.Eid.scale_informed r2.Eid.scale_informed);
  (* d below the bridge latency: G_d is disconnected, the pipeline
     honestly reports failure confined to the source component. *)
  let stuck = Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d:1 ~source:0 () in
  checkb "d = 1 cannot cross bridges" false stuck.Eid.scale_success;
  checki "confined to the source clique" 5 (count_informed stuck.Eid.scale_informed);
  match Eid.run_known_diameter_scale (Rng.of_int 7) csr ~d:0 ~source:0 () with
  | _ -> Alcotest.fail "d = 0 accepted"
  | exception Invalid_argument _ -> ()

(* The full Theorem 20 chain with zero latency knowledge: discovery ->
   T(k) schedule -> spanner RR -> termination check, guess-and-double
   outer loop, bit-identical across shard counts. *)
let test_unknown_eid_scale () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:2 in
  let r = Eid.run_unknown_scale (Rng.of_int 11) csr ~source:0 () in
  checkb "success with no a-priori latencies" true r.Eid.u_success;
  (* Early attempts with too-small k may split their verdicts (Lemma 18
     unanimity needs the flood to cover the graph); the accepting
     attempt is always unanimous — no node failed. *)
  (match List.rev r.Eid.u_attempts with
  | last :: _ ->
      checkb "accepting attempt unanimous" true last.Eid.ua_unanimous;
      checkb "accepting attempt clean" false last.Eid.ua_failed
  | [] -> Alcotest.fail "no attempts recorded");
  checki "everyone informed" (Csr.n csr) (count_informed r.Eid.u_informed);
  checkb "at least one attempt" true (r.Eid.u_attempts <> []);
  (* Guesses double: k = 1, 2, 4, ... *)
  List.iteri
    (fun i a -> checki (Printf.sprintf "attempt %d guess" i) (1 lsl i) a.Eid.ua_k)
    r.Eid.u_attempts;
  (* Rounds account for every phase of every attempt. *)
  let budget =
    List.fold_left
      (fun acc a ->
        acc + a.Eid.ua_discovery_rounds + a.Eid.ua_schedule_rounds + a.Eid.ua_rr_rounds
        + a.Eid.ua_check_rounds)
      0 r.Eid.u_attempts
  in
  checki "rounds = sum over attempts and phases" budget r.Eid.u_rounds;
  List.iter
    (fun d ->
      let rd = Eid.run_unknown_scale ~domains:d (Rng.of_int 11) csr ~source:0 () in
      checki (Printf.sprintf "rounds domains=%d" d) r.Eid.u_rounds rd.Eid.u_rounds;
      checki (Printf.sprintf "k_final domains=%d" d) r.Eid.u_k_final rd.Eid.u_k_final;
      checkb (Printf.sprintf "informed domains=%d" d) true
        (Bytes.equal r.Eid.u_informed rd.Eid.u_informed))
    parity_domains

let test_unified_scale () =
  let module Dissemination = Gossip_core.Dissemination in
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:6 ~bridge_latency:2 in
  let run d =
    Dissemination.broadcast_scale ?domains:d (Rng.of_int 5) csr ~source:0
      ~max_rounds:100_000 ()
  in
  let r = run None in
  checkb "unified succeeds" true r.Dissemination.b_success;
  checki "everyone informed" (Csr.n csr) (count_informed r.Dissemination.b_informed);
  (* The winner really is the cheaper branch. *)
  (match r.Dissemination.b_pushpull_rounds with
  | Some pp ->
      checki "min of the branches" (min pp r.Dissemination.b_spanner_rounds)
        r.Dissemination.b_rounds
  | None -> checki "spanner wins by default" r.Dissemination.b_spanner_rounds
              r.Dissemination.b_rounds);
  List.iter
    (fun d ->
      let rd = run (Some d) in
      checki (Printf.sprintf "rounds domains=%d" d) r.Dissemination.b_rounds
        rd.Dissemination.b_rounds;
      checkb (Printf.sprintf "winner domains=%d" d) true
        (r.Dissemination.b_winner = rd.Dissemination.b_winner);
      checkb (Printf.sprintf "informed domains=%d" d) true
        (Bytes.equal r.Dissemination.b_informed rd.Dissemination.b_informed))
    parity_domains

let () =
  Alcotest.run "gossip_kernel"
    [
      ( "protocol",
        [
          Alcotest.test_case "name round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "Rr_spanner needs a spanner" `Quick
            test_of_protocol_rr_needs_spanner;
        ] );
      ( "spanner-oriented",
        [
          qtest prop_spanner_out_degree;
          qtest prop_oriented_roundtrip;
          Alcotest.test_case "out-degree bound enforced" `Quick test_out_degree_bound_enforced;
        ] );
      ( "rr-parity",
        [
          Alcotest.test_case "gadget families" `Quick test_rr_parity_gadgets;
          qtest prop_rr_parity;
        ] );
      ( "dtg",
        [
          Alcotest.test_case "dtg = flood at l_max" `Quick test_dtg_flood_coincides;
          Alcotest.test_case "confined to G_ell" `Quick test_dtg_confined_to_subgraph;
        ] );
      ("faults", [ Alcotest.test_case "crash + jitter smoke" `Quick test_kernel_fault_smoke ]);
      ( "sharded-kernels",
        [
          Alcotest.test_case "fixed cases" `Quick test_sharded_kernel_fixed;
          qtest prop_sharded_kernel_parity;
          qtest prop_sharded_kernel_parity_scenario;
          qtest prop_check_sharded_parity;
          qtest prop_discovery_sharded_parity;
        ] );
      ( "check-parity",
        [
          Alcotest.test_case "fixed cases" `Quick test_check_parity_fixed;
          qtest prop_check_parity;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "kernel-tagged counters" `Quick test_kernel_tagged_telemetry ] );
      ( "eid-scale",
        [
          Alcotest.test_case "known-diameter pipeline" `Quick test_eid_scale_smoke;
          Alcotest.test_case "unknown-latency chain" `Quick test_unknown_eid_scale;
          Alcotest.test_case "unified race" `Quick test_unified_scale;
        ] );
    ]
