(* Tests for fault injection, the robustness runners, and the bounded
   in-degree model (Section 7 extensions). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Engine = Gossip_sim.Engine
module Robustness = Gossip_core.Robustness
module Spanner = Gossip_core.Spanner

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_crash_fraction_counts () =
  let plan =
    Robustness.crash_fraction (Rng.of_int 1) ~n:20 ~fraction:0.25 ~from_round:5 ~protect:[ 0 ]
  in
  let crashed_at round =
    let c = ref 0 in
    for v = 0 to 19 do
      if not (plan.Engine.alive ~node:v ~round) then incr c
    done;
    !c
  in
  checki "none before from_round" 0 (crashed_at 4);
  checki "five crashed after" 5 (crashed_at 5);
  checkb "protected node alive" true (plan.Engine.alive ~node:0 ~round:100)

let test_crash_fraction_rounds_to_nearest () =
  (* 0.15 of 10 nodes is 1.5: truncation crashed 1, rounding crashes 2.
     This is the regression test for the int_of_float truncation bug. *)
  let plan =
    Robustness.crash_fraction (Rng.of_int 6) ~n:10 ~fraction:0.15 ~from_round:0 ~protect:[]
  in
  let c = ref 0 in
  for v = 0 to 9 do
    if not (plan.Engine.alive ~node:v ~round:0) then incr c
  done;
  checki "1.5 victims round to 2" 2 !c;
  (* 0.04 of 10 is 0.4: rounds to zero, nobody crashes. *)
  let plan0 =
    Robustness.crash_fraction (Rng.of_int 6) ~n:10 ~fraction:0.04 ~from_round:0 ~protect:[]
  in
  for v = 0 to 9 do
    checkb "0.4 victims round to 0" true (plan0.Engine.alive ~node:v ~round:0)
  done

let test_crash_fraction_skipped_surfaced () =
  (* Everyone protected: the full quota goes unplaced, and the plan
     says so instead of silently crashing nobody. *)
  let skipped = ref (-1) in
  let protect = List.init 10 Fun.id in
  let plan =
    Robustness.crash_fraction ~skipped (Rng.of_int 7) ~n:10 ~fraction:0.5 ~from_round:0
      ~protect
  in
  checki "all five victims skipped" 5 !skipped;
  for v = 0 to 9 do
    checkb "nobody crashed" true (plan.Engine.alive ~node:v ~round:0)
  done;
  (* Unconstrained quota: skipped reports zero. *)
  let skipped2 = ref (-1) in
  ignore
    (Robustness.crash_fraction ~skipped:skipped2 (Rng.of_int 8) ~n:10 ~fraction:0.5
       ~from_round:0 ~protect:[]);
  checki "full quota placed" 0 !skipped2

let test_crash_fraction_validation () =
  Alcotest.check_raises "fraction 1.0"
    (Invalid_argument "Robustness.crash_fraction: fraction out of [0,1)") (fun () ->
      ignore
        (Robustness.crash_fraction (Rng.of_int 1) ~n:4 ~fraction:1.0 ~from_round:0 ~protect:[]))

let test_drop_rate_extremes () =
  let never = Robustness.drop_rate (Rng.of_int 2) ~rate:0.0 in
  for round = 0 to 50 do
    checkb "rate 0 never drops" false (never.Engine.drop ~initiator:0 ~responder:1 ~round)
  done

let test_jitter_bounds () =
  let plan = Robustness.jitter_up_to (Rng.of_int 3) ~extra:4 in
  for round = 0 to 200 do
    let l = plan.Engine.jitter ~latency:7 ~round in
    checkb "within [7, 11]" true (l >= 7 && l <= 11)
  done

let test_combine () =
  let a =
    Robustness.crash_fraction (Rng.of_int 4) ~n:10 ~fraction:0.3 ~from_round:0 ~protect:[ 0 ]
  in
  let b = Robustness.jitter_up_to (Rng.of_int 5) ~extra:2 in
  let c = Robustness.combine [ a; b ] in
  checkb "alive intersects" true (c.Engine.alive ~node:0 ~round:10);
  let some_dead = ref false in
  for v = 0 to 9 do
    if not (c.Engine.alive ~node:v ~round:10) then some_dead := true
  done;
  checkb "crashes propagate" true !some_dead;
  checkb "jitter composes" true (c.Engine.jitter ~latency:5 ~round:0 >= 5)

(* ------------------------------------------------------------------ *)
(* Engine-level fault semantics *)

let test_crashed_node_is_silent () =
  (* Node 1 crashed from round 0: node 0's exchanges with it are lost
     and counted as dropped. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 2) ] in
  let plan =
    { Engine.no_faults with Engine.alive = (fun ~node ~round:_ -> node <> 1) }
  in
  let responses = ref 0 in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round < 3 then Some (1, ()) else None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> incr responses);
    }
  in
  let engine = Engine.create ~faults:plan g ~handlers in
  for _ = 1 to 10 do
    Engine.step engine
  done;
  checki "no responses" 0 !responses;
  checki "three drops" 3 (Engine.metrics engine).Engine.dropped

let test_dropped_exchange_never_arrives () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let plan =
    {
      Engine.no_faults with
      Engine.drop = (fun ~initiator:_ ~responder:_ ~round -> round = 0);
    }
  in
  let pushes = ref 0 in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round <= 1 then Some (1, ()) else None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> incr pushes);
      on_response = (fun ~peer:_ ~round:_ () -> ());
    }
  in
  let engine = Engine.create ~faults:plan g ~handlers in
  for _ = 1 to 5 do
    Engine.step engine
  done;
  checki "only the round-1 exchange lands" 1 !pushes;
  checki "one drop" 1 (Engine.metrics engine).Engine.dropped

let test_jitter_delays_delivery () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 2) ] in
  let plan =
    { Engine.no_faults with Engine.jitter = (fun ~latency ~round:_ -> latency + 3) }
  in
  let response_round = ref (-1) in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round = 0 then Some (1, ()) else None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round () -> response_round := round);
    }
  in
  let engine = Engine.create ~faults:plan g ~handlers in
  for _ = 1 to 10 do
    Engine.step engine
  done;
  checki "round trip = latency + jitter" 5 !response_round

let test_payload_words_metric () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round = 0 then Some (1, 10) else None);
      on_request = (fun ~peer:_ ~round:_ _ -> 32);
      on_push = (fun ~peer:_ ~round:_ _ -> ());
      on_response = (fun ~peer:_ ~round:_ _ -> ());
    }
  in
  let engine = Engine.create ~payload_size:(fun w -> w) g ~handlers in
  for _ = 1 to 3 do
    Engine.step engine
  done;
  (* Request carried 10 units, response 32. *)
  checki "payload accounting" 42 (Engine.metrics engine).Engine.payload_words

let test_in_capacity_rejects () =
  (* Three clients request the same server each round; capacity 1
     serves exactly one per round and rejects the rest. *)
  let g = Graph.of_edges ~n:4 [ (0, 3, 1); (1, 3, 1); (2, 3, 1) ] in
  let served = ref 0 in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u < 3 && round < 6 then Some (3, ()) else None);
      on_request =
        (fun ~peer:_ ~round:_ () ->
          incr served;
          ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> ());
    }
  in
  let engine = Engine.create ~in_capacity:1 g ~handlers in
  for _ = 1 to 10 do
    Engine.step engine
  done;
  checki "one served per round" 6 !served;
  checki "rest rejected" 12 (Engine.metrics engine).Engine.rejected

let test_in_capacity_fairness () =
  (* Rotation must eventually serve every client. *)
  let g = Graph.of_edges ~n:4 [ (0, 3, 1); (1, 3, 1); (2, 3, 1) ] in
  let served_from = Array.make 4 false in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u < 3 && round < 9 then Some (3, ()) else None);
      on_request =
        (fun ~peer ~round:_ () ->
          served_from.(peer) <- true;
          ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> ());
    }
  in
  let engine = Engine.create ~in_capacity:1 g ~handlers in
  for _ = 1 to 12 do
    Engine.step engine
  done;
  for client = 0 to 2 do
    checkb "every client served at least once" true served_from.(client)
  done

let test_in_capacity_validation () =
  let g = Gen.path 2 in
  Alcotest.check_raises "capacity 0" (Invalid_argument "Engine.create: in_capacity must be >= 1")
    (fun () ->
      ignore
        (Engine.create ~in_capacity:0 g ~handlers:(fun _ ->
             {
               Engine.on_round = (fun ~round:_ -> None);
               on_request = (fun ~peer:_ ~round:_ () -> ());
               on_push = (fun ~peer:_ ~round:_ () -> ());
               on_response = (fun ~peer:_ ~round:_ () -> ());
             })))

(* ------------------------------------------------------------------ *)
(* Runners *)

let test_pushpull_no_faults_equals_plain () =
  let g = Gen.clique 16 in
  let r =
    Robustness.pushpull_broadcast (Rng.of_int 9) g ~source:0 ~plan:Robustness.no_faults
      ~max_rounds:10_000
  in
  checkb "completes" true (r.Robustness.rounds <> None);
  checki "all live" 16 r.Robustness.live;
  checki "all informed" 16 r.Robustness.informed_live

let test_pushpull_survives_drops () =
  let g = Gen.clique 24 in
  let plan = Robustness.drop_rate (Rng.of_int 10) ~rate:0.3 in
  let r =
    Robustness.pushpull_broadcast (Rng.of_int 11) g ~source:0 ~plan ~max_rounds:100_000
  in
  checkb "still completes" true (r.Robustness.rounds <> None)

let test_pushpull_covers_live_after_crashes () =
  let g = Gen.clique 32 in
  let plan =
    Robustness.crash_fraction (Rng.of_int 12) ~n:32 ~fraction:0.25 ~from_round:2 ~protect:[ 0 ]
  in
  let r =
    Robustness.pushpull_broadcast (Rng.of_int 13) g ~source:0 ~plan ~max_rounds:100_000
  in
  checkb "live graph covered" true (r.Robustness.informed_live = r.Robustness.live);
  checki "live count" 24 r.Robustness.live

let test_rr_fragile_on_tree_shape () =
  (* A path's spanner is the path itself; crashing a middle node must
     strand the far side. *)
  let g = Gen.path 9 in
  let spanner = Spanner.build (Rng.of_int 14) g ~k:2 () in
  let plan =
    { Engine.no_faults with Engine.alive = (fun ~node ~round -> not (node = 4 && round >= 0)) }
  in
  let r = Robustness.rr_broadcast spanner ~source:0 ~k:20 ~plan in
  checkb "some live node stranded" true (r.Robustness.informed_live < r.Robustness.live)

let test_bounded_indegree_star_linear () =
  let n = 32 in
  let g = Gen.star n in
  let unbounded = Gossip_core.Push_pull.broadcast (Rng.of_int 15) g ~source:0 ~max_rounds:10_000 in
  let bounded =
    Robustness.pushpull_bounded_indegree (Rng.of_int 15) g ~source:0 ~capacity:1
      ~max_rounds:100_000
  in
  let u = match unbounded.Gossip_core.Push_pull.rounds with Some x -> x | None -> max_int in
  let b = match bounded.Robustness.rounds with Some x -> x | None -> max_int in
  checkb "capacity 1 is ~n slower" true (b >= (n / 2) + 1 && b > 4 * u)

let prop_pushpull_with_faults_covers_live =
  QCheck.Test.make ~name:"faulty push-pull always covers live connected component" ~count:8
    QCheck.(pair (int_range 10 30) (int_range 0 100))
    (fun (n, seed) ->
      (* Dense graph so the live part stays connected. *)
      let g = Gen.erdos_renyi_connected (Rng.of_int seed) ~n ~p:0.5 in
      let plan =
        Robustness.crash_fraction (Rng.of_int (seed + 1)) ~n ~fraction:0.2 ~from_round:2
          ~protect:[ 0 ]
      in
      let r =
        Robustness.pushpull_broadcast (Rng.of_int (seed + 2)) g ~source:0 ~plan
          ~max_rounds:1_000_000
      in
      r.Robustness.informed_live = r.Robustness.live)

let () =
  Alcotest.run "gossip_robustness"
    [
      ( "plans",
        [
          Alcotest.test_case "crash fraction" `Quick test_crash_fraction_counts;
          Alcotest.test_case "crash fraction rounds" `Quick test_crash_fraction_rounds_to_nearest;
          Alcotest.test_case "crash skipped surfaced" `Quick test_crash_fraction_skipped_surfaced;
          Alcotest.test_case "crash validation" `Quick test_crash_fraction_validation;
          Alcotest.test_case "drop extremes" `Quick test_drop_rate_extremes;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "combine" `Quick test_combine;
        ] );
      ( "engine-faults",
        [
          Alcotest.test_case "crashed node silent" `Quick test_crashed_node_is_silent;
          Alcotest.test_case "dropped exchange" `Quick test_dropped_exchange_never_arrives;
          Alcotest.test_case "jitter delays" `Quick test_jitter_delays_delivery;
          Alcotest.test_case "payload accounting" `Quick test_payload_words_metric;
          Alcotest.test_case "in-capacity rejects" `Quick test_in_capacity_rejects;
          Alcotest.test_case "in-capacity fairness" `Quick test_in_capacity_fairness;
          Alcotest.test_case "in-capacity validation" `Quick test_in_capacity_validation;
        ] );
      ( "runners",
        [
          Alcotest.test_case "no faults = plain" `Quick test_pushpull_no_faults_equals_plain;
          Alcotest.test_case "survives drops" `Quick test_pushpull_survives_drops;
          Alcotest.test_case "covers live after crashes" `Quick
            test_pushpull_covers_live_after_crashes;
          Alcotest.test_case "rr fragile on path" `Quick test_rr_fragile_on_tree_shape;
          Alcotest.test_case "bounded in-degree star" `Quick test_bounded_indegree_star_linear;
          qtest prop_pushpull_with_faults_covers_live;
        ] );
    ]
