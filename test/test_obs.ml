(* Tests for gossip_obs: Registry (counters/gauges/histograms +
   merge), Ring, Span, Sink, Report, and the ?telemetry plumbing
   through the engines and the sweep. *)

module Registry = Gossip_obs.Registry
module Ring = Gossip_obs.Ring
module Span = Gossip_obs.Span
module Sink = Gossip_obs.Sink
module Report = Gossip_obs.Report
module Json = Gossip_util.Json
module Stats = Gossip_util.Stats
module Rng = Gossip_util.Rng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

let temp_file suffix =
  let path = Filename.temp_file "gossip_obs_test" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counter_gauge () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  Registry.incr c;
  Registry.add c 4;
  checki "counter" 5 (Registry.counter_value c);
  checkb "same handle" true (Registry.counter r "c" == c);
  let g = Registry.gauge r "g" in
  Registry.set g 3;
  Registry.record_max g 10;
  Registry.record_max g 7;
  checki "gauge high-water" 10 (Registry.gauge_value g)

let test_registry_kind_clash () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  checkb "gauge under counter name raises" true
    (try
       ignore (Registry.gauge r "x");
       false
     with Invalid_argument _ -> true)

let test_registry_hist_exact_small () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  List.iter (Registry.observe h) [ 0; 1; 2; 3; -5; 1 ];
  checki "count" 6 (Registry.hist_count h);
  checki "sum" 2 (Registry.hist_sum h);
  checkf "mean exact" (2.0 /. 6.0) (Registry.hist_mean h);
  (* values 0..3 and negatives land in exact buckets *)
  let buckets = Registry.hist_buckets h in
  checkb "bucket (0,0) holds 0 and -5" true (List.mem (0, 0, 2) buckets);
  checkb "bucket (1,1) holds both 1s" true (List.mem (1, 1, 2) buckets)

let test_registry_hist_bucket_bounds () =
  (* every observed value must fall inside its reported bucket, and
     bucket relative width must stay within 25% for v >= 4 *)
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  let values = [ 4; 5; 7; 8; 100; 1023; 1024; 65537; 1_000_000_000 ] in
  List.iter
    (fun v ->
      Registry.observe h v;
      let covered =
        List.exists (fun (lo, hi, _) -> lo <= v && v <= hi) (Registry.hist_buckets h)
      in
      checkb (Printf.sprintf "%d inside some bucket" v) true covered)
    values;
  List.iter
    (fun (lo, hi, _) ->
      if lo >= 4 then
        checkb
          (Printf.sprintf "width of [%d,%d] within 25%%" lo hi)
          true
          (float_of_int (hi - lo) /. float_of_int lo <= 0.25 +. 1e-9))
    (Registry.hist_buckets h)

let test_registry_hist_percentile () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  checkb "empty is nan" true (Float.is_nan (Registry.hist_percentile h 50.0));
  for _ = 1 to 100 do
    Registry.observe h 2
  done;
  checkf "all-equal exact bucket" 2.0 (Registry.hist_percentile h 50.0);
  checkb "out of range" true
    (try
       ignore (Registry.hist_percentile h 101.0);
       false
     with Invalid_argument _ -> true)

let test_registry_hist_percentile_accuracy () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  let rng = Rng.of_int 42 in
  let values = Array.init 2000 (fun _ -> 1 + Rng.int rng 100_000) in
  Array.iter (Registry.observe h) values;
  let exact = Stats.percentile (Array.map float_of_int values) in
  List.iter
    (fun p ->
      let approx = Registry.hist_percentile h p in
      let e = exact p in
      checkb
        (Printf.sprintf "p%.0f within bucket error" p)
        true
        (Float.abs (approx -. e) /. e <= 0.30))
    [ 50.0; 90.0; 99.0 ]

let test_registry_merge_semantics () =
  let a = Registry.create () and b = Registry.create () in
  Registry.add (Registry.counter a "c") 3;
  Registry.add (Registry.counter b "c") 4;
  Registry.set (Registry.gauge a "g") 10;
  Registry.set (Registry.gauge b "g") 6;
  Registry.observe (Registry.histogram a "h") 5;
  Registry.observe (Registry.histogram b "h") 5;
  Registry.observe (Registry.histogram b "h") 900;
  Registry.add (Registry.counter b "only_b") 1;
  Registry.merge ~into:a b;
  checki "counters add" 7 (Registry.counter_value (Registry.counter a "c"));
  checki "gauges max" 10 (Registry.gauge_value (Registry.gauge a "g"));
  checki "hist count adds" 3 (Registry.hist_count (Registry.histogram a "h"));
  checki "hist sum adds" 910 (Registry.hist_sum (Registry.histogram a "h"));
  checki "missing metric created" 1 (Registry.counter_value (Registry.counter a "only_b"));
  checkb "src untouched" true (Registry.counter_value (Registry.counter b "c") = 4)

(* Random op scripts over a small fixed name set (kinds fixed per name
   so scripts never clash). *)
let apply_ops r ops =
  List.iter
    (fun (kind, idx, v) ->
      match kind mod 3 with
      | 0 -> Registry.add (Registry.counter r (Printf.sprintf "c%d" idx)) v
      | 1 -> Registry.record_max (Registry.gauge r (Printf.sprintf "g%d" idx)) v
      | _ -> Registry.observe (Registry.histogram r (Printf.sprintf "h%d" idx)) v)
    ops

let ops_gen =
  QCheck.(
    list_of_size
      Gen.(int_range 0 30)
      (triple (int_range 0 2) (int_range 0 1) (int_range (-50) 10_000)))

let snapshot r = Json.to_string (Registry.to_json r)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    QCheck.(triple ops_gen ops_gen ops_gen)
    (fun (oa, ob, oc) ->
      let make ops =
        let r = Registry.create () in
        apply_ops r ops;
        r
      in
      let left =
        let ab = Registry.create () in
        Registry.merge ~into:ab (make oa);
        Registry.merge ~into:ab (make ob);
        let abc = Registry.create () in
        Registry.merge ~into:abc ab;
        Registry.merge ~into:abc (make oc);
        abc
      in
      let right =
        let bc = Registry.create () in
        Registry.merge ~into:bc (make ob);
        Registry.merge ~into:bc (make oc);
        let abc = Registry.create () in
        Registry.merge ~into:abc (make oa);
        Registry.merge ~into:abc bc;
        abc
      in
      snapshot left = snapshot right)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200
    QCheck.(pair ops_gen ops_gen)
    (fun (oa, ob) ->
      let make ops =
        let r = Registry.create () in
        apply_ops r ops;
        r
      in
      let ab = Registry.create () in
      Registry.merge ~into:ab (make oa);
      Registry.merge ~into:ab (make ob);
      let ba = Registry.create () in
      Registry.merge ~into:ba (make ob);
      Registry.merge ~into:ba (make oa);
      snapshot ab = snapshot ba)

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_basic_order () =
  let r = Ring.create ~capacity:8 () in
  for i = 1 to 5 do
    Ring.record r ~round:i ~kind:Ring.kind_informed ~node:(-1) ~value:(10 * i)
  done;
  checki "length" 5 (Ring.length r);
  checki "seen" 5 (Ring.seen r);
  checki "kept" 5 (Ring.kept r);
  checkb "oldest first" true
    (Ring.to_list r
    = [ (1, 0, -1, 10); (2, 0, -1, 20); (3, 0, -1, 30); (4, 0, -1, 40); (5, 0, -1, 50) ])

let test_ring_overwrite () =
  let r = Ring.create ~capacity:3 () in
  for i = 1 to 10 do
    Ring.record r ~round:i ~kind:0 ~node:0 ~value:i
  done;
  checki "length capped" 3 (Ring.length r);
  checki "seen all" 10 (Ring.seen r);
  checki "kept all" 10 (Ring.kept r);
  check
    (Alcotest.list Alcotest.int)
    "newest three survive" [ 8; 9; 10 ]
    (List.map (fun (round, _, _, _) -> round) (Ring.to_list r))

let test_ring_sampling () =
  let r = Ring.create ~sample:3 ~capacity:100 () in
  for i = 0 to 29 do
    Ring.record r ~round:i ~kind:0 ~node:0 ~value:i
  done;
  checki "seen all" 30 (Ring.seen r);
  checki "kept every 3rd" 10 (Ring.kept r);
  check
    (Alcotest.list Alcotest.int)
    "first of each stride kept"
    [ 0; 3; 6; 9; 12; 15; 18; 21; 24; 27 ]
    (List.map (fun (round, _, _, _) -> round) (Ring.to_list r))

let test_ring_validation () =
  checkb "capacity 0 rejected" true
    (try
       ignore (Ring.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true);
  checkb "sample 0 rejected" true
    (try
       ignore (Ring.create ~sample:0 ~capacity:4 ());
       false
     with Invalid_argument _ -> true)

let test_ring_kind_names () =
  check Alcotest.string "informed" "informed" (Ring.kind_name Ring.kind_informed);
  check Alcotest.string "queue" "queue" (Ring.kind_name Ring.kind_queue);
  check Alcotest.string "fallback" "k99" (Ring.kind_name 99)

(* ------------------------------------------------------------------ *)
(* Span *)

let test_span_nesting () =
  let (inner_report, outer_report) =
    let outer = Span.enter "outer" in
    let _, inner =
      Span.timed "inner" (fun () ->
          (* boxed floats in list cells keep the allocation minor *)
          let acc = ref [] in
          for i = 0 to 999 do
            acc := float_of_int i :: !acc
          done;
          ignore (Sys.opaque_identity !acc))
    in
    (inner, Span.exit outer)
  in
  checki "outer depth" 0 outer_report.Span.depth;
  checki "inner depth" 1 inner_report.Span.depth;
  checkb "elapsed nonneg" true (outer_report.Span.elapsed_s >= 0.0);
  checkb "outer covers inner" true
    (outer_report.Span.elapsed_s >= inner_report.Span.elapsed_s);
  checkb "allocation observed" true (inner_report.Span.minor_words > 0.0)

let test_span_double_exit () =
  let s = Span.enter "x" in
  ignore (Span.exit s);
  checkb "double exit raises" true
    (try
       ignore (Span.exit s);
       false
     with Invalid_argument _ -> true)

let test_span_unwinds_on_raise () =
  (try ignore (Span.timed "boom" (fun () -> failwith "boom")) with Failure _ -> ());
  let s = Span.enter "after" in
  let r = Span.exit s in
  checki "depth restored" 0 r.Span.depth

let test_span_json () =
  let _, r = Span.timed "j" (fun () -> ()) in
  let fields = Span.report_json r in
  checkb "ev span" true (List.assoc "ev" fields = Json.String "span");
  checkb "label" true (List.assoc "label" fields = Json.String "j")

(* ------------------------------------------------------------------ *)
(* Sink + Report *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_sink_jsonl_roundtrip () =
  let path = temp_file ".jsonl" in
  let events =
    [
      [ ("ev", Json.String "meta"); ("tool", Json.String "test"); ("n", Json.Int 3) ];
      [
        ("ev", Json.String "job");
        ("elapsed_s", Json.Float 0.25);
        ("rounds", Json.Null);
        ("note", Json.String "ctrl:\x01\ttab");
      ];
      [ ("ev", Json.String "counter"); ("name", Json.String "c"); ("value", Json.Int (-7)) ];
    ]
  in
  Sink.with_jsonl path (fun sink -> List.iter (Sink.event sink) events);
  let lines = read_lines path in
  checki "one line per event" (List.length events) (List.length lines);
  List.iter2
    (fun line fields ->
      match Json.of_string line with
      | Ok parsed -> checkb "line round-trips" true (parsed = Json.Obj fields)
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e)
    lines events

let test_sink_registry_dump () =
  let path = temp_file ".jsonl" in
  let ring = Ring.create ~capacity:4 () in
  let r = Registry.create ~ring () in
  Registry.add (Registry.counter r "a.count") 2;
  Registry.set (Registry.gauge r "b.gauge") 9;
  Registry.observe (Registry.histogram r "c.hist") 17;
  Ring.record ring ~round:0 ~kind:Ring.kind_informed ~node:(-1) ~value:5;
  Sink.with_jsonl path (fun sink ->
      Sink.registry sink r;
      Sink.ring sink ring);
  let parsed =
    List.map
      (fun l -> match Json.of_string l with Ok j -> j | Error e -> Alcotest.fail e)
      (read_lines path)
  in
  let evs =
    List.map
      (function
        | Json.Obj fields -> (
            match List.assoc "ev" fields with Json.String s -> s | _ -> "?")
        | _ -> "?")
      parsed
  in
  check
    (Alcotest.list Alcotest.string)
    "event sequence"
    [ "counter"; "gauge"; "hist"; "ring"; "trace" ]
    evs

let test_sink_csv () =
  let path = temp_file ".csv" in
  let sink = Sink.csv path ~header:[ "ev"; "name"; "value" ] in
  Sink.event sink
    [ ("ev", Json.String "counter"); ("name", Json.String "with,comma"); ("value", Json.Int 3) ];
  Sink.event sink [ ("value", Json.Int 1); ("ev", Json.String "gauge") ];
  Sink.close sink;
  check
    (Alcotest.list Alcotest.string)
    "csv rows"
    [ "ev,name,value"; "counter,\"with,comma\",3"; "gauge,,1" ]
    (read_lines path)

let test_report_matches_stats () =
  (* The acceptance check of the subsystem: percentiles printed by the
     report must agree exactly with Stats applied to the raw file. *)
  let path = temp_file ".jsonl" in
  let elapsed = [ 0.5; 0.125; 0.25; 1.5; 0.75; 0.0625; 2.0 ] in
  Sink.with_jsonl path (fun sink ->
      Sink.event sink [ ("ev", Json.String "meta") ];
      List.iteri
        (fun i e ->
          Sink.event sink
            [
              ("ev", Json.String "job");
              ("id", Json.Int i);
              ("rounds", if i = 3 then Json.Null else Json.Int (100 + i));
              ("elapsed_s", Json.Float e);
            ])
        elapsed);
  let report = Report.of_file path in
  checki "events" (1 + List.length elapsed) report.Report.events;
  checki "no parse errors" 0 report.Report.parse_errors;
  (* independently re-derive the elapsed sample from the raw file *)
  let raw =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok (Json.Obj fields) when List.assoc_opt "ev" fields = Some (Json.String "job")
          -> (
            match List.assoc "elapsed_s" fields with
            | Json.Float f -> Some f
            | Json.Int i -> Some (float_of_int i)
            | _ -> None)
        | _ -> None)
      (read_lines path)
    |> Array.of_list
  in
  checki "raw sample size" (List.length elapsed) (Array.length raw);
  checkf "p50 matches Stats on raw file" (Stats.percentile raw 50.0)
    (Report.job_percentile report 50.0);
  checkf "p95 matches Stats on raw file" (Stats.percentile raw 95.0)
    (Report.job_percentile report 95.0);
  (match report.Report.job_latency with
  | Some s ->
      checkf "summary median" (Stats.percentile raw 50.0) s.Stats.median;
      checkf "summary p95" (Stats.percentile raw 95.0) s.Stats.p95
  | None -> Alcotest.fail "expected a job latency summary");
  (* rounds summary counts completed jobs only *)
  match report.Report.rounds_summary with
  | Some s -> checki "completed jobs" (List.length elapsed - 1) s.Stats.n
  | None -> Alcotest.fail "expected a rounds summary"

let test_report_tolerates_garbage () =
  let path = temp_file ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"ev\":\"meta\"}\nnot json at all\n{\"ev\":\"counter\",\"name\":\"x\",\"value\":4}\n";
  close_out oc;
  let report = Report.of_file path in
  checki "events" 2 report.Report.events;
  checki "parse errors" 1 report.Report.parse_errors;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters" [ ("x", 4) ] report.Report.counters

(* ------------------------------------------------------------------ *)
(* Engine integration *)

let test_engine_telemetry () =
  let g =
    Gossip_graph.Gen.erdos_renyi_connected (Rng.of_int 5) ~n:48 ~p:0.15
  in
  let ring = Ring.create ~capacity:1024 () in
  let reg = Registry.create ~ring () in
  let plain =
    Gossip_core.Push_pull.broadcast (Rng.of_int 17) g ~source:0 ~max_rounds:10_000
  in
  let traced =
    Gossip_core.Push_pull.broadcast ~telemetry:reg (Rng.of_int 17) g ~source:0
      ~max_rounds:10_000
  in
  checkb "telemetry does not perturb the run" true
    (plain.Gossip_core.Push_pull.rounds = traced.Gossip_core.Push_pull.rounds);
  let rounds =
    match traced.Gossip_core.Push_pull.rounds with Some r -> r | None -> Alcotest.fail "capped"
  in
  let h = Registry.histogram reg "engine.round.deliveries" in
  checki "one observation per round" rounds (Registry.hist_count h);
  checki "delivery total matches metrics" traced.Gossip_core.Push_pull.metrics.Gossip_sim.Engine.deliveries
    (Registry.hist_sum h);
  (* informed trace reaches n on the last round *)
  let informed =
    List.filter_map
      (fun (round, kind, _, v) -> if kind = Ring.kind_informed then Some (round, v) else None)
      (Ring.to_list ring)
  in
  checkb "informed trace nonempty" true (informed <> []);
  let _, final = List.nth informed (List.length informed - 1) in
  checki "final informed is n" (Gossip_graph.Graph.n g) final

let test_wheel_telemetry () =
  let csr =
    Gossip_scale.Csr.with_latencies (Rng.of_int 8) (Gossip_graph.Gen.Uniform (1, 4))
      (Gossip_scale.Csr.barabasi_albert (Rng.of_int 3) ~n:2_000 ~attach:3)
  in
  let ring = Ring.create ~capacity:4096 () in
  let reg = Registry.create ~ring () in
  let plain =
    Gossip_scale.Wheel_engine.broadcast (Rng.of_int 21) csr
      ~protocol:Gossip_scale.Wheel_engine.Push_pull ~source:0 ~max_rounds:10_000
  in
  let traced =
    Gossip_scale.Wheel_engine.broadcast ~telemetry:reg (Rng.of_int 21) csr
      ~protocol:Gossip_scale.Wheel_engine.Push_pull ~source:0 ~max_rounds:10_000
  in
  checkb "telemetry does not perturb the run" true
    (plain.Gossip_scale.Wheel_engine.rounds = traced.Gossip_scale.Wheel_engine.rounds);
  let rounds =
    match traced.Gossip_scale.Wheel_engine.rounds with
    | Some r -> r
    | None -> Alcotest.fail "capped"
  in
  let h = Registry.histogram reg "wheel.round.deliveries" in
  checki "one observation per round" rounds (Registry.hist_count h);
  checki "delivery total matches metrics"
    traced.Gossip_scale.Wheel_engine.metrics.Gossip_sim.Engine.deliveries
    (Registry.hist_sum h);
  checkb "in-flight high-water positive" true
    (Registry.gauge_value (Registry.gauge reg "wheel.inflight.max") > 0)

(* ------------------------------------------------------------------ *)
(* Sweep integration *)

let test_sweep_telemetry_report () =
  let module Sweep = Gossip_sweep.Sweep in
  let jobs =
    Sweep.make_jobs
      ~family:(Sweep.Ring_of_cliques { size = 4; bridge_latency = 2 })
      ~n:16 ~protocol:Gossip_scale.Wheel_engine.Push_pull ~trials:5 ~base_seed:3
      ~max_rounds:100_000 ()
  in
  let reg = Registry.create () in
  let outcomes = Sweep.run ~workers:1 ~telemetry:reg jobs in
  checki "worker job counter" 5
    (Registry.counter_value (Registry.counter reg "pool.worker0.jobs"));
  checki "job hist count" 5 (Registry.hist_count (Registry.histogram reg "pool.job_us"));
  let path = temp_file ".jsonl" in
  Sweep.write_telemetry path ~meta:[ ("tool", Json.String "test") ] ~registry:reg outcomes;
  let report = Report.of_file path in
  checki "no parse errors" 0 report.Report.parse_errors;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "event kinds"
    [ ("meta", 1); ("job", 5); ("counter", 4); ("hist", 2) ]
    report.Report.by_ev;
  (* report percentiles = Stats over the outcomes' raw elapsed times *)
  let raw = Array.of_list (List.map (fun o -> o.Sweep.elapsed_s) outcomes) in
  checkf "p50 agrees with Stats" (Stats.percentile raw 50.0)
    (Report.job_percentile report 50.0);
  checkf "p95 agrees with Stats" (Stats.percentile raw 95.0)
    (Report.job_percentile report 95.0)

let test_pool_telemetry_multiworker () =
  let module Pool = Gossip_sweep.Pool in
  let reg = Registry.create () in
  let out =
    Pool.run ~workers:3 ~telemetry:reg (fun x -> x * x) (Array.init 20 (fun i -> i))
  in
  check (Alcotest.array Alcotest.int) "results in order"
    (Array.init 20 (fun i -> i * i))
    out;
  (* eager pre-registration: every worker's metrics exist even if the
     scheduler starved it *)
  let jobs_total =
    List.fold_left
      (fun acc w ->
        acc + Registry.counter_value (Registry.counter reg (Printf.sprintf "pool.worker%d.jobs" w)))
      0 [ 0; 1; 2 ]
  in
  checki "every job counted exactly once" 20 jobs_total;
  checki "job hist sees all jobs" 20 (Registry.hist_count (Registry.histogram reg "pool.job_us"));
  checki "queue depth hist sees all jobs" 20
    (Registry.hist_count (Registry.histogram reg "pool.queue_depth"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gossip_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_registry_counter_gauge;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
          Alcotest.test_case "hist exact small values" `Quick test_registry_hist_exact_small;
          Alcotest.test_case "hist bucket bounds" `Quick test_registry_hist_bucket_bounds;
          Alcotest.test_case "hist percentile" `Quick test_registry_hist_percentile;
          Alcotest.test_case "hist percentile accuracy" `Quick
            test_registry_hist_percentile_accuracy;
          Alcotest.test_case "merge semantics" `Quick test_registry_merge_semantics;
          qtest prop_merge_associative;
          qtest prop_merge_commutative;
        ] );
      ( "ring",
        [
          Alcotest.test_case "order" `Quick test_ring_basic_order;
          Alcotest.test_case "overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "sampling" `Quick test_ring_sampling;
          Alcotest.test_case "validation" `Quick test_ring_validation;
          Alcotest.test_case "kind names" `Quick test_ring_kind_names;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "double exit" `Quick test_span_double_exit;
          Alcotest.test_case "unwinds on raise" `Quick test_span_unwinds_on_raise;
          Alcotest.test_case "json" `Quick test_span_json;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_sink_jsonl_roundtrip;
          Alcotest.test_case "registry dump" `Quick test_sink_registry_dump;
          Alcotest.test_case "csv" `Quick test_sink_csv;
        ] );
      ( "report",
        [
          Alcotest.test_case "percentiles match Stats" `Quick test_report_matches_stats;
          Alcotest.test_case "tolerates garbage lines" `Quick test_report_tolerates_garbage;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine telemetry" `Quick test_engine_telemetry;
          Alcotest.test_case "wheel telemetry" `Quick test_wheel_telemetry;
          Alcotest.test_case "sweep telemetry report" `Quick test_sweep_telemetry_report;
          Alcotest.test_case "pool multiworker" `Quick test_pool_telemetry_multiworker;
        ] );
    ]
