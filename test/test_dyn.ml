(* Tests for lib/dyn: scenario validation and JSON round-trips, the
   compiled environment's schedule/churn semantics, static scenarios'
   bit-identity with the plain engine, churn edge cases on the timing
   wheel, adversarial spanner jitter, the phi/ell* observer, and the
   braided-ring generator the e16 experiment runs on. *)

module Rng = Gossip_util.Rng
module Json = Gossip_util.Json
module Gen = Gossip_graph.Gen
module Engine = Gossip_sim.Engine
module Csr = Gossip_scale.Csr
module Wheel = Gossip_scale.Wheel_engine
module Registry = Gossip_obs.Registry
module Scenario = Gossip_dyn.Scenario

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Validation *)

let expect_invalid name s =
  match Scenario.of_string s with
  | _ -> Alcotest.failf "%s: malformed scenario accepted" name
  | exception Scenario.Invalid_scenario _ -> ()

let test_validation_rejects () =
  expect_invalid "bad json" "{ bad";
  expect_invalid "not an object" "[1, 2]";
  expect_invalid "unknown top field" {|{"nmae": "typo"}|};
  expect_invalid "unknown schedule kind" {|{"schedules": [{"kind": "quadratic"}]}|};
  expect_invalid "unknown filter kind"
    {|{"schedules": [{"kind": "step", "at": 1, "factor": 2, "filter": {"kind": "odd"}}]}|};
  expect_invalid "negative rate" {|{"schedules": [{"kind": "linear", "rate": -0.1, "cap": 2}]}|};
  expect_invalid "cap below one" {|{"schedules": [{"kind": "linear", "rate": 0.1, "cap": 0.5}]}|};
  expect_invalid "negative step time" {|{"schedules": [{"kind": "step", "at": -3, "factor": 2}]}|};
  expect_invalid "zero step factor" {|{"schedules": [{"kind": "step", "at": 3, "factor": 0}]}|};
  expect_invalid "empty trace" {|{"schedules": [{"kind": "trace", "multipliers": []}]}|};
  expect_invalid "negative leave" {|{"churn": [{"node": 2, "leave": -1}]}|};
  expect_invalid "rejoin before leave" {|{"churn": [{"node": 2, "leave": 5, "rejoin": 5}]}|};
  expect_invalid "fraction above one"
    {|{"churn": [{"kind": "random", "fraction": 1.5, "leave": 1, "down": 2}]}|};
  expect_invalid "unknown churn kind" {|{"churn": [{"kind": "byzantine"}]}|};
  expect_invalid "adversary aims elsewhere" {|{"adversary": {"budget": 2, "from": "everywhere"}}|};
  expect_invalid "negative budget" {|{"adversary": {"budget": -1}}|};
  expect_invalid "zero epoch" {|{"epoch": 0}|}

let test_compile_rejects () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:3 in
  let expect name s ~source =
    match Scenario.compile (Scenario.of_string s) ~csr ~source with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Scenario.Invalid_scenario _ -> ()
  in
  (* Churning the source is a typed error, never a hung broadcast. *)
  expect "source churn" {|{"churn": [{"node": 3, "leave": 2}]}|} ~source:3;
  expect "churn node out of range" {|{"churn": [{"node": 99, "leave": 2}]}|} ~source:0;
  (* An adversary needs a spanner orientation to aim at. *)
  expect "adversary without orientation" {|{"adversary": {"budget": 2}}|} ~source:0

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let filter_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Scenario.All;
      QCheck.Gen.map (fun l -> Scenario.Lat_ge l) (QCheck.Gen.int_range 1 9);
      QCheck.Gen.map (fun l -> Scenario.Lat_le l) (QCheck.Gen.int_range 1 9);
      QCheck.Gen.map2
        (fun modulus residue -> Scenario.Endpoint_mod { modulus; residue = residue mod modulus })
        (QCheck.Gen.int_range 1 7) (QCheck.Gen.int_range 0 6);
    ]

let schedule_gen =
  let open QCheck.Gen in
  oneof
    [
      map2
        (fun rate cap -> Scenario.Linear { rate; cap })
        (oneofl [ 0.0; 0.125; 0.5 ])
        (oneofl [ 1.0; 2.0; 4.0 ]);
      map2
        (fun amplitude (period, phase) -> Scenario.Diurnal { amplitude; period; phase })
        (oneofl [ 0.0; 0.5; 1.5 ])
        (pair (int_range 1 64) (int_range 0 8));
      map2 (fun at factor -> Scenario.Step { at; factor }) (int_range 0 50)
        (oneofl [ 0.5; 2.0; 3.0 ]);
      map2
        (fun ms dilate -> Scenario.Trace { multipliers = Array.of_list ms; dilate })
        (list_size (int_range 1 5) (oneofl [ 1.0; 1.5; 2.0 ]))
        (int_range 1 10);
    ]

let churn_gen =
  let open QCheck.Gen in
  oneof
    [
      map2
        (fun node (leave, rejoin) ->
          Scenario.Leave
            { node; leave; rejoin = Option.map (fun d -> leave + 1 + d) rejoin })
        (int_range 0 50)
        (pair (int_range 0 30) (opt (int_range 0 20)));
      map2
        (fun fraction (leave, (down, period)) -> Scenario.Random_churn { fraction; leave; down; period })
        (oneofl [ 0.0; 0.125; 0.5 ])
        (pair (int_range 0 30) (pair (int_range 1 20) (int_range 1 8)));
    ]

let scenario_gen =
  let open QCheck.Gen in
  let* name = oneofl [ "a"; "drift"; "x y" ] in
  let* seed = int_range 0 10_000 in
  let* rules =
    list_size (int_range 0 3)
      (map2 (fun schedule filter -> { Scenario.schedule; filter }) schedule_gen filter_gen)
  in
  let* churn = list_size (int_range 0 3) churn_gen in
  let* adversary = opt (map (fun budget -> { Scenario.budget }) (int_range 0 5)) in
  let* epoch = int_range 1 64 in
  let* track_phi = bool in
  return { Scenario.name; seed; rules; churn; adversary; epoch; track_phi }

let prop_json_roundtrip =
  QCheck.Test.make ~name:"of_json (to_json s) = s" ~count:200
    (QCheck.make ~print:(fun s -> Json.to_string (Scenario.to_json s)) scenario_gen)
    (fun s -> Scenario.of_json (Scenario.to_json s) = s)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string through the printer" ~count:100
    (QCheck.make scenario_gen)
    (fun s -> Scenario.of_string (Json.to_string (Scenario.to_json s)) = s)

(* ------------------------------------------------------------------ *)
(* Compiled environment semantics *)

let test_static_is_trivial () =
  checkb "static is static" true (Scenario.is_static Scenario.static);
  checkb "drift is not" false
    (Scenario.is_static
       (Scenario.of_string {|{"schedules": [{"kind": "step", "at": 1, "factor": 2}]}|}));
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:5 in
  let c = Scenario.compile Scenario.static ~csr ~source:0 in
  let e = c.Scenario.env in
  checkb "no churn flag" false e.Wheel.env_has_churn;
  checki "identity latency" 5 (e.Wheel.env_latency ~u:0 ~v:4 ~latency:5 ~round:9);
  checkb "everyone alive" true (e.Wheel.env_alive ~node:7 ~round:50);
  checkb "everyone present" true (e.Wheel.env_present_since ~node:7 ~since:0 ~round:50);
  checki "wheel latency is just lmax" (Csr.max_latency csr) c.Scenario.wheel_latency

let test_linear_drift_semantics () =
  let s =
    Scenario.of_string
      {|{"schedules": [{"kind": "linear", "rate": 0.5, "cap": 3,
                        "filter": {"kind": "lat-ge", "latency": 4}}]}|}
  in
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:6 in
  let c = Scenario.compile s ~csr ~source:0 in
  let lat round = c.Scenario.env.Wheel.env_latency ~u:0 ~v:4 ~latency:6 ~round in
  checki "round 0 untouched" 6 (lat 0);
  checki "round 2 doubled" 12 (lat 2);
  checki "round 100 capped at 3x" 18 (lat 100);
  (* The filter spares clique edges entirely. *)
  checki "fast edge untouched" 1 (c.Scenario.env.Wheel.env_latency ~u:0 ~v:1 ~latency:1 ~round:100);
  (* The wheel bound covers the worst stretched latency. *)
  checkb "wheel bound covers cap" true (c.Scenario.wheel_latency >= 18)

let test_diurnal_bounds () =
  let s =
    Scenario.of_string {|{"schedules": [{"kind": "diurnal", "amplitude": 1.0, "period": 16}]}|}
  in
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:8 in
  let c = Scenario.compile s ~csr ~source:0 in
  for round = 0 to 48 do
    let l = c.Scenario.env.Wheel.env_latency ~u:0 ~v:4 ~latency:8 ~round in
    if l < 8 || l > 16 then Alcotest.failf "diurnal out of [8,16] at round %d: %d" round l
  done

let test_churn_intervals () =
  let s = Scenario.of_string {|{"churn": [{"node": 2, "leave": 3, "rejoin": 7}]}|} in
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:3 in
  let c = Scenario.compile s ~csr ~source:0 in
  let e = c.Scenario.env in
  checkb "has churn" true e.Wheel.env_has_churn;
  checkb "alive before" true (e.Wheel.env_alive ~node:2 ~round:2);
  checkb "absent at leave" false (e.Wheel.env_alive ~node:2 ~round:3);
  checkb "absent just before rejoin" false (e.Wheel.env_alive ~node:2 ~round:6);
  checkb "back at rejoin" true (e.Wheel.env_alive ~node:2 ~round:7);
  checkb "rejoin flagged once" true (e.Wheel.env_rejoin ~node:2 ~round:7);
  checkb "not flagged before" false (e.Wheel.env_rejoin ~node:2 ~round:6);
  checkb "not flagged after" false (e.Wheel.env_rejoin ~node:2 ~round:8);
  (* Presence over an interval: an exchange initiated before the leave
     cannot deliver to the node after it returns. *)
  checkb "present over [0,2]" true (e.Wheel.env_present_since ~node:2 ~since:0 ~round:2);
  checkb "absence intersects [2,8]" false (e.Wheel.env_present_since ~node:2 ~since:2 ~round:8);
  checkb "present over [7,20]" true (e.Wheel.env_present_since ~node:2 ~since:7 ~round:20);
  (* Other nodes are untouched. *)
  checkb "others alive" true (e.Wheel.env_alive ~node:5 ~round:4)

let test_random_churn_spares_source () =
  let s =
    Scenario.of_string
      {|{"seed": 9, "churn": [{"kind": "random", "fraction": 0.5, "leave": 1, "down": 4, "period": 3}]}|}
  in
  let csr = Csr.ring_of_cliques ~cliques:5 ~size:4 ~bridge_latency:3 in
  let source = 11 in
  let c = Scenario.compile s ~csr ~source in
  let e = c.Scenario.env in
  for round = 0 to 40 do
    checkb "source never leaves" true (e.Wheel.env_alive ~node:source ~round)
  done;
  (* fraction 0.5 of 20 nodes: someone is actually absent at some point. *)
  let absences = ref 0 in
  for node = 0 to 19 do
    for round = 0 to 40 do
      if not (e.Wheel.env_alive ~node ~round) then incr absences
    done
  done;
  checkb "churn actually happens" true (!absences > 0);
  (* Same scenario, same graph: the sample is deterministic. *)
  let c2 = Scenario.compile s ~csr ~source in
  for node = 0 to 19 do
    for round = 0 to 40 do
      checkb "deterministic sample" (e.Wheel.env_alive ~node ~round)
        (c2.Scenario.env.Wheel.env_alive ~node ~round)
    done
  done

let test_random_churn_rounds_to_nearest () =
  (* fraction 0.15 of 10 nodes is 1.5: truncation churned 1 node,
     rounding churns 2 — the regression test for the truncation bug. *)
  let s =
    Scenario.of_string
      {|{"seed": 4, "churn": [{"kind": "random", "fraction": 0.15, "leave": 0, "down": 100, "period": 1}]}|}
  in
  let csr = Csr.of_graph (Gen.cycle 10) in
  let c = Scenario.compile s ~csr ~source:0 in
  let absent = ref 0 in
  for node = 0 to 9 do
    if not (c.Scenario.env.Wheel.env_alive ~node ~round:1) then incr absent
  done;
  checki "1.5 churned nodes round to 2" 2 !absent

let test_random_churn_zero_count_rejected () =
  (* A positive fraction that rounds to zero churned nodes would
     silently disable the entry; compile refuses instead. *)
  let s =
    Scenario.of_string
      {|{"churn": [{"kind": "random", "fraction": 0.04, "leave": 1, "down": 2}]}|}
  in
  let csr = Csr.of_graph (Gen.cycle 10) in
  (match Scenario.compile s ~csr ~source:0 with
  | _ -> Alcotest.fail "zero-count churn entry accepted"
  | exception Scenario.Invalid_scenario msg ->
      checkb "message names the entry" true
        (String.length msg > 0 && String.sub msg 0 17 = "scenario.churn[0]"));
  (* fraction exactly 0 stays a valid no-op. *)
  let s0 =
    Scenario.of_string
      {|{"churn": [{"kind": "random", "fraction": 0.0, "leave": 1, "down": 2}]}|}
  in
  ignore (Scenario.compile s0 ~csr ~source:0)

(* ------------------------------------------------------------------ *)
(* Static scenarios are bit-identical to the plain engine *)

let check_same label (a : Wheel.result) (b : Wheel.result) =
  Alcotest.check (Alcotest.option Alcotest.int) (label ^ " rounds") a.Wheel.rounds b.Wheel.rounds;
  checkb (label ^ " history") true (a.Wheel.history = b.Wheel.history);
  checkb (label ^ " metrics") true (a.Wheel.metrics = b.Wheel.metrics);
  checkb (label ^ " informed") true (Bytes.equal a.Wheel.informed b.Wheel.informed)

let test_static_bit_identity () =
  let csr = Csr.ring_of_cliques ~cliques:5 ~size:6 ~bridge_latency:5 in
  let c = Scenario.compile Scenario.static ~csr ~source:3 in
  let faults =
    {
      Wheel.no_faults with
      Engine.drop = (fun ~initiator ~responder ~round -> (initiator + responder + round) mod 7 = 0);
    }
  in
  List.iter
    (fun protocol ->
      let name = Wheel.protocol_name protocol in
      let run ?faults ?env ?wheel_latency d =
        Wheel.broadcast ?faults ?env ?wheel_latency ~domains:d (Rng.of_int 11) csr ~protocol
          ~source:3 ~max_rounds:100_000
      in
      (* Trivial env vs no env, sequential and sharded... *)
      check_same (name ^ " seq") (run 1)
        (run ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency 1);
      check_same (name ^ " sharded") (run 1)
        (run ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency 3);
      (* ... and composed with a static fault plan. *)
      check_same (name ^ " faults") (run ~faults 1)
        (run ~faults ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency 1))
    [ Wheel.Push_pull; Wheel.Flood; Wheel.Random_contact ]

(* ------------------------------------------------------------------ *)
(* Churn on the wheel *)

(* A response can be in flight to a node that leaves and rejoins before
   it lands: the delivery must be suppressed (the initiation predates
   the rejoin), the run must still complete, and the rejoined node must
   be re-informed by a post-rejoin exchange. *)
let test_rejoin_while_response_on_wheel () =
  let g = Gen.with_latencies (Rng.of_int 1) (Gen.Fixed 5) (Gen.path 2) in
  let csr = Csr.of_graph g in
  let s = Scenario.of_string {|{"churn": [{"node": 1, "leave": 2, "rejoin": 3}]}|} in
  let c = Scenario.compile s ~csr ~source:0 in
  let run ?env ?wheel_latency () =
    Wheel.broadcast ?env ?wheel_latency (Rng.of_int 4) csr ~protocol:Wheel.Push_pull ~source:0
      ~max_rounds:1_000
  in
  let base = run () in
  let churned = run ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency () in
  (match (base.Wheel.rounds, churned.Wheel.rounds) with
  | Some b, Some ch ->
      checkb "blip slows the broadcast" true (ch > b);
      checkb "still informs everyone" true (Bytes.get churned.Wheel.informed 1 <> '\000')
  | _ -> Alcotest.fail "a two-node broadcast must complete");
  checkb "suppressed delivery counted" true (churned.Wheel.metrics.Engine.dropped > 0);
  (* Sequential and sharded agree on the churned trajectory too. *)
  let sharded =
    Wheel.broadcast ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency ~domains:2
      (Rng.of_int 4) csr ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:1_000
  in
  check_same "churned parity" churned sharded

let test_permanent_leave_darkens_node () =
  let csr = Csr.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:2 in
  let s = Scenario.of_string {|{"churn": [{"node": 9, "leave": 0}]}|} in
  let c = Scenario.compile s ~csr ~source:0 in
  let r =
    Wheel.broadcast ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency (Rng.of_int 2)
      csr ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:500
  in
  checkb "capped, not hung" true (r.Wheel.rounds = None);
  checki "the leaver stays dark" 0 (Char.code (Bytes.get r.Wheel.informed 9))

(* ------------------------------------------------------------------ *)
(* Adversarial spanner jitter *)

let test_adversary_on_spanner () =
  let csr = Csr.ring_of_cliques ~cliques:5 ~size:5 ~bridge_latency:4 in
  let spanner =
    Gossip_core.Spanner.build (Rng.of_int 29) (Csr.to_graph csr) ~k:3 ~n_hat:(Csr.n csr) ()
  in
  let oriented = Csr.of_oriented_spanner spanner.Gossip_core.Spanner.out_edges in
  let s = Scenario.of_string {|{"seed": 5, "adversary": {"budget": 3}}|} in
  let c = Scenario.compile ~oriented s ~csr ~source:0 in
  checkb "budget widens the wheel" true (c.Scenario.wheel_latency >= Csr.max_latency csr + 3);
  (* Jitter is additive, bounded by the budget, and only on spanner edges. *)
  let e = c.Scenario.env in
  let saw_jitter = ref false in
  for u = 0 to Csr.n csr - 1 do
    Csr.oriented_iter_out oriented u (fun v latency ->
        for round = 0 to 20 do
          let l = e.Wheel.env_latency ~u ~v ~latency ~round in
          if l < latency || l > latency + 3 then
            Alcotest.failf "jitter out of budget on (%d,%d) at %d: %d" u v round l;
          if l > latency then saw_jitter := true
        done)
  done;
  checkb "adversary actually jitters" true !saw_jitter;
  (* A non-spanner pair is untouched (clique edge absent from most rows). *)
  let untouched = ref 0 in
  for u = 0 to Csr.n csr - 1 do
    Csr.iter_neighbors csr u (fun v latency ->
        let on_spanner =
          let found = ref false in
          Csr.oriented_iter_out oriented u (fun w _ -> if w = v then found := true);
          Csr.oriented_iter_out oriented v (fun w _ -> if w = u then found := true);
          !found
        in
        if (not on_spanner) && e.Wheel.env_latency ~u ~v ~latency ~round:7 = latency then
          incr untouched)
  done;
  checkb "off-spanner edges untouched" true (!untouched > 0)

(* ------------------------------------------------------------------ *)
(* Observer *)

let test_observer_gauges () =
  let csr = Csr.braided_ring ~cliques:6 ~size:6 ~bridges:2 ~bridge_latency:6 in
  let s =
    Scenario.of_string
      {|{"epoch": 4, "track-phi": true,
         "schedules": [{"kind": "linear", "rate": 0.25, "cap": 2,
                        "filter": {"kind": "lat-ge", "latency": 6}}]}|}
  in
  let c = Scenario.compile s ~csr ~source:0 in
  let reg = Registry.create () in
  let on_round = Scenario.observer c ~csr ~telemetry:reg in
  let r =
    Wheel.broadcast ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency ~on_round
      (Rng.of_int 7) csr ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:10_000
  in
  checkb "completes" true (r.Wheel.rounds <> None);
  let value name = Registry.gauge_value (Registry.gauge reg name) in
  checkb "epoch 0 ell*" true (value "dyn.epoch.0.ell_star" >= 1);
  checkb "epoch 0 phi" true (value "dyn.epoch.0.phi_ell_ppm" > 0);
  checkb "epoch 0 bound" true (value "dyn.epoch.0.bound" >= 1);
  (* track_phi off: the observer is a no-op. *)
  let s_off = { s with Scenario.track_phi = false } in
  let c_off = Scenario.compile s_off ~csr ~source:0 in
  let reg_off = Registry.create () in
  let on_round = Scenario.observer c_off ~csr ~telemetry:reg_off in
  on_round ~round:0 ~informed:1;
  checki "no gauges without track-phi" 0 (List.length (Registry.gauges reg_off))

(* ------------------------------------------------------------------ *)
(* Braided ring *)

let test_braided_ring_structure () =
  let cliques = 5 and size = 6 and bridges = 3 and bridge_latency = 7 in
  let t = Csr.braided_ring ~cliques ~size ~bridges ~bridge_latency in
  checki "n" (cliques * size) (Csr.n t);
  checkb "connected" true (Csr.is_connected t);
  checki "max latency" bridge_latency (Csr.max_latency t);
  (* Bridge nodes carry two extra edges, the rest are clique-only. *)
  for c = 0 to cliques - 1 do
    for j = 0 to size - 1 do
      let expected = (size - 1) + if j < bridges then 2 else 0 in
      checki (Printf.sprintf "degree of node %d" ((c * size) + j)) expected
        (Csr.degree t ((c * size) + j))
    done
  done;
  (* The backbone (bridge 0) is strictly faster than the other bridges. *)
  let backbone = Csr.latency t 0 size and braid = Csr.latency t 1 (size + 1) in
  checkb "backbone faster" true (backbone = Some (bridge_latency - 1));
  checkb "braid at full latency" true (braid = Some bridge_latency);
  match Csr.braided_ring ~cliques:2 ~size:4 ~bridges:1 ~bridge_latency:3 with
  | _ -> Alcotest.fail "cliques = 2 accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "gossip_dyn"
    [
      ( "validate",
        [
          Alcotest.test_case "malformed scenarios rejected" `Quick test_validation_rejects;
          Alcotest.test_case "compile-time rejections" `Quick test_compile_rejects;
        ] );
      ("json", [ qtest prop_json_roundtrip; qtest prop_string_roundtrip ]);
      ( "env",
        [
          Alcotest.test_case "static is trivial" `Quick test_static_is_trivial;
          Alcotest.test_case "linear drift" `Quick test_linear_drift_semantics;
          Alcotest.test_case "diurnal bounds" `Quick test_diurnal_bounds;
          Alcotest.test_case "churn intervals" `Quick test_churn_intervals;
          Alcotest.test_case "random churn spares source" `Quick test_random_churn_spares_source;
          Alcotest.test_case "random churn rounds" `Quick test_random_churn_rounds_to_nearest;
          Alcotest.test_case "zero-count churn rejected" `Quick
            test_random_churn_zero_count_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "static bit-identity" `Quick test_static_bit_identity;
          Alcotest.test_case "rejoin while response on wheel" `Quick
            test_rejoin_while_response_on_wheel;
          Alcotest.test_case "permanent leave" `Quick test_permanent_leave_darkens_node;
          Alcotest.test_case "adversary on spanner" `Quick test_adversary_on_spanner;
          Alcotest.test_case "observer gauges" `Quick test_observer_gauges;
        ] );
      ("braided-ring", [ Alcotest.test_case "structure" `Quick test_braided_ring_structure ]);
    ]
