(* Tests for lib/scale: the CSR graph representation and the flat-array
   timing-wheel engine, including the old-vs-new push-pull trajectory
   parity property. *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Engine = Gossip_sim.Engine
module Csr = Gossip_scale.Csr
module I32 = Gossip_scale.I32
module Wheel = Gossip_scale.Wheel_engine
module Shard = Gossip_scale.Shard
module Registry = Gossip_obs.Registry
module Push_pull = Gossip_core.Push_pull
module Flooding = Gossip_core.Flooding

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* CSR structure *)

(* Structural sanity of a CSR graph: monotone row_ptr, sorted simple
   rows, symmetric latencies. *)
let assert_valid_csr name (t : Csr.t) =
  checki (name ^ ": row_ptr length") (Csr.n t + 1) (I32.length t.Csr.row_ptr);
  checki (name ^ ": row_ptr start") 0 (I32.get t.Csr.row_ptr 0);
  checki (name ^ ": row_ptr end") (I32.length t.Csr.col) (I32.get t.Csr.row_ptr (Csr.n t));
  for u = 0 to Csr.n t - 1 do
    let lo = I32.get t.Csr.row_ptr u and hi = I32.get t.Csr.row_ptr (u + 1) in
    if lo > hi then Alcotest.failf "%s: row_ptr decreases at %d" name u;
    for i = lo to hi - 1 do
      let v = I32.get t.Csr.col i in
      if v = u then Alcotest.failf "%s: self loop at %d" name u;
      if i > lo && I32.get t.Csr.col (i - 1) >= v then
        Alcotest.failf "%s: row %d not strictly sorted" name u;
      if Csr.latency t v u <> Some (I32.get t.Csr.lat i) then
        Alcotest.failf "%s: edge (%d,%d) not symmetric" name u v
    done
  done

let test_of_graph_roundtrip () =
  let rng = Rng.of_int 42 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 9)) (Gen.erdos_renyi_connected rng ~n:40 ~p:0.2)
  in
  let c = Csr.of_graph g in
  assert_valid_csr "er40" c;
  checki "n" (Graph.n g) (Csr.n c);
  checki "m" (Graph.m g) (Csr.m c);
  checki "max latency" (Graph.max_latency g) (Csr.max_latency c);
  checki "max degree" (Graph.max_degree g) (Csr.max_degree c);
  let g' = Csr.to_graph c in
  checki "roundtrip m" (Graph.m g) (Graph.m g');
  Graph.iter_edges
    (fun e ->
      if Graph.latency g' e.Graph.u e.Graph.v <> Some e.Graph.latency then
        Alcotest.failf "edge (%d,%d) lost in roundtrip" e.Graph.u e.Graph.v)
    g

let test_ring_of_cliques_matches_gen () =
  List.iter
    (fun (cliques, size, bridge) ->
      let direct = Csr.ring_of_cliques ~cliques ~size ~bridge_latency:bridge in
      let packed = Csr.of_graph (Gen.ring_of_cliques ~cliques ~size ~bridge_latency:bridge) in
      assert_valid_csr "ring direct" direct;
      checkb
        (Printf.sprintf "ring %dx%d bridge %d identical" cliques size bridge)
        true (Csr.equal direct packed))
    [ (3, 1, 1); (3, 4, 7); (5, 8, 12); (12, 3, 2) ]

let test_barabasi_albert_csr () =
  let c = Csr.barabasi_albert (Rng.of_int 7) ~n:300 ~attach:3 in
  assert_valid_csr "ba300" c;
  checki "n" 300 (Csr.n c);
  (* attach * (attach+1)/2 seed edges + attach per later node *)
  checki "m" (6 + (296 * 3)) (Csr.m c);
  checkb "connected" true (Csr.is_connected c)

let test_watts_strogatz_csr () =
  let c = Csr.watts_strogatz (Rng.of_int 11) ~n:200 ~k:3 ~beta:0.2 in
  assert_valid_csr "ws200" c;
  checki "n" 200 (Csr.n c);
  checki "m" 600 (Csr.m c)

let test_with_latencies () =
  let c =
    Csr.with_latencies (Rng.of_int 5) (Gen.Uniform (2, 6))
      (Csr.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:9)
  in
  assert_valid_csr "relat" c;
  for i = 0 to I32.length c.Csr.lat - 1 do
    let l = I32.get c.Csr.lat i in
    if l < 2 || l > 6 then Alcotest.failf "latency %d out of range" l
  done

let test_is_connected () =
  checkb "ring connected" true
    (Csr.is_connected (Csr.ring_of_cliques ~cliques:3 ~size:2 ~bridge_latency:1));
  let disconnected = Csr.of_graph (Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ]) in
  checkb "two components" false (Csr.is_connected disconnected)

let prop_csr_roundtrip =
  QCheck.Test.make ~name:"csr of_graph/to_graph roundtrip" ~count:50
    QCheck.(pair (int_range 2 60) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n ~p:0.3)
      in
      let c = Csr.of_graph g in
      Csr.equal c (Csr.of_graph (Csr.to_graph c)))

(* ------------------------------------------------------------------ *)
(* Wheel engine: basic behavior *)

let test_wheel_pushpull_completes () =
  let c = Csr.ring_of_cliques ~cliques:4 ~size:8 ~bridge_latency:6 in
  let r =
    Wheel.broadcast (Rng.of_int 3) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:100_000
  in
  checkb "completes" true (r.Wheel.rounds <> None);
  (match r.Wheel.history with
  | (0, 1) :: _ -> ()
  | _ -> Alcotest.fail "history must start at (0, 1)");
  let final_round, final_count = List.nth r.Wheel.history (List.length r.Wheel.history - 1) in
  checki "final count" 32 final_count;
  checki "rounds is last change" (Option.get r.Wheel.rounds) final_round

let test_wheel_flood_and_random_contact_complete () =
  let c = Csr.of_graph (Gen.with_latencies (Rng.of_int 2) (Gen.Uniform (1, 4)) (Gen.clique 20)) in
  List.iter
    (fun protocol ->
      let r = Wheel.broadcast (Rng.of_int 9) c ~protocol ~source:3 ~max_rounds:10_000 in
      checkb (Wheel.protocol_name protocol ^ " completes") true (r.Wheel.rounds <> None))
    [ Wheel.Flood; Wheel.Random_contact ]

let test_wheel_single_node () =
  let c = Csr.of_graph (Graph.of_edges ~n:1 []) in
  let r = Wheel.broadcast (Rng.of_int 1) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:10 in
  Alcotest.check (Alcotest.option Alcotest.int) "zero rounds" (Some 0) r.Wheel.rounds

let test_wheel_drop_everything () =
  let c = Csr.of_graph (Gen.path 2) in
  let faults =
    { Wheel.no_faults with Engine.drop = (fun ~initiator:_ ~responder:_ ~round:_ -> true) }
  in
  let r =
    Wheel.broadcast ~faults (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:50
  in
  checkb "never completes" true (r.Wheel.rounds = None);
  checki "everything dropped" r.Wheel.metrics.Engine.initiations
    r.Wheel.metrics.Engine.dropped;
  checki "nothing delivered" 0 r.Wheel.metrics.Engine.deliveries

let test_wheel_crash_isolates () =
  (* Path 0-1-2: node 1 crashed from the start, so the rumor can never
     cross and node 2 stays uninformed. *)
  let c = Csr.of_graph (Gen.path 3) in
  let faults =
    { Wheel.no_faults with Engine.alive = (fun ~node ~round:_ -> node <> 1) }
  in
  let t = Wheel.create ~faults (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0 in
  for _ = 1 to 60 do
    Wheel.step t
  done;
  checkb "source informed" true (Wheel.informed t 0);
  checkb "crashed node dark" false (Wheel.informed t 1);
  checkb "far side dark" false (Wheel.informed t 2);
  checkb "losses counted" true ((Wheel.metrics t).Engine.dropped > 0)

let test_wheel_jitter_bound () =
  let c = Csr.of_graph (Gen.path 2) in
  let faults =
    { Wheel.no_faults with Engine.jitter = (fun ~latency ~round:_ -> latency + 50) }
  in
  (* An undeclared jitter overrunning the wheel is a typed exception
     (a failed run for the sweep runtime), not Invalid_argument. *)
  let t = Wheel.create ~faults (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0 in
  Alcotest.check_raises "oversized jitter rejected"
    (Wheel.Jitter_overflow { latency = 51; bound = 1; round = 0 }) (fun () -> Wheel.step t);
  (* A wheel sized for the jitter accepts it. *)
  let t =
    Wheel.create ~faults ~wheel_latency:64 (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0
  in
  let rec go n = if Wheel.informed_count t < 2 && n > 0 then (Wheel.step t; go (n - 1)) in
  go 200;
  checki "spread despite jitter" 2 (Wheel.informed_count t)

let test_wheel_max_jitter_declared () =
  let c = Csr.of_graph (Gen.path 2) in
  let faults =
    { Wheel.no_faults with Engine.jitter = (fun ~latency ~round:_ -> latency + 50) }
  in
  (* Declaring the plan's maximum jitter sizes the wheel automatically:
     the same plan that overflowed above now runs to completion. *)
  let t =
    Wheel.create ~faults ~max_jitter:50 (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0
  in
  let rec go n = if Wheel.informed_count t < 2 && n > 0 then (Wheel.step t; go (n - 1)) in
  go 400;
  checki "spread with declared jitter" 2 (Wheel.informed_count t);
  (* An explicit wheel_latency too small for the declared jitter fails
     fast at create, not thousands of rounds into a sweep job. *)
  (match
     Wheel.create ~faults ~wheel_latency:10 ~max_jitter:50 (Rng.of_int 4) c
       ~protocol:Wheel.Push_pull ~source:0
   with
  | _ -> Alcotest.fail "undersized wheel accepted"
  | exception Invalid_argument msg ->
      checkb "clear message" true
        (String.length msg > 0
        && String.sub msg 0 (String.length "Wheel_engine.create") = "Wheel_engine.create"));
  match
    Wheel.create ~max_jitter:(-1) (Rng.of_int 4) c ~protocol:Wheel.Push_pull ~source:0
  with
  | _ -> Alcotest.fail "negative max_jitter accepted"
  | exception Invalid_argument _ -> ()

let test_wheel_deadline () =
  let c = Csr.of_graph (Gen.cycle 64) in
  (* A deadline already in the past aborts between rounds with the
     typed exception (the sweep runtime records it as a failure). *)
  (match
     Wheel.broadcast ~deadline:0.0 (Rng.of_int 9) c ~protocol:Wheel.Push_pull ~source:0
       ~max_rounds:10_000
   with
  | _ -> Alcotest.fail "expected Deadline_exceeded"
  | exception Wheel.Deadline_exceeded { round; elapsed_s } ->
      checki "aborted before stepping" 0 round;
      checkb "elapsed measured" true (elapsed_s >= 0.0));
  (* A generous deadline changes nothing: same trajectory as no deadline. *)
  let far = Unix.gettimeofday () +. 3600.0 in
  let bare =
    Wheel.broadcast (Rng.of_int 9) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:10_000
  in
  let budgeted =
    Wheel.broadcast ~deadline:far (Rng.of_int 9) c ~protocol:Wheel.Push_pull ~source:0
      ~max_rounds:10_000
  in
  Alcotest.check
    (Alcotest.option Alcotest.int)
    "deadline never steers the run" bare.Wheel.rounds budgeted.Wheel.rounds;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "identical history" bare.Wheel.history budgeted.Wheel.history

let test_wheel_metrics_match_engine () =
  (* Not just the trajectory: on a fault-free run the counters line up
     with the reference engine too. *)
  let g = Gen.ring_of_cliques ~cliques:3 ~size:5 ~bridge_latency:4 in
  let old_r = Push_pull.broadcast (Rng.of_int 21) g ~source:2 ~max_rounds:10_000 in
  let new_r =
    Wheel.broadcast (Rng.of_int 21) (Csr.of_graph g) ~protocol:Wheel.Push_pull ~source:2
      ~max_rounds:10_000
  in
  checki "initiations" old_r.Push_pull.metrics.Engine.initiations
    new_r.Wheel.metrics.Engine.initiations;
  checki "deliveries" old_r.Push_pull.metrics.Engine.deliveries
    new_r.Wheel.metrics.Engine.deliveries;
  checki "rounds" old_r.Push_pull.metrics.Engine.rounds new_r.Wheel.metrics.Engine.rounds

(* ------------------------------------------------------------------ *)
(* Old-vs-new engine parity *)

let trajectory_testable =
  Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)

let test_parity_fixed_cases () =
  List.iter
    (fun (label, g, seed, source) ->
      let old_r = Push_pull.broadcast (Rng.of_int seed) g ~source ~max_rounds:1_000_000 in
      let new_r =
        Wheel.broadcast (Rng.of_int seed) (Csr.of_graph g) ~protocol:Wheel.Push_pull ~source
          ~max_rounds:1_000_000
      in
      Alcotest.check (Alcotest.option Alcotest.int) (label ^ " rounds") old_r.Push_pull.rounds
        new_r.Wheel.rounds;
      Alcotest.check trajectory_testable (label ^ " trajectory") old_r.Push_pull.history
        new_r.Wheel.history)
    [
      ("clique", Gen.clique 64, 1, 0);
      ("star", Gen.star 50, 2, 7);
      ("dumbbell", Gen.dumbbell ~size:10 ~bridge_latency:13, 3, 0);
      ( "ring-of-cliques-2000",
        Gen.ring_of_cliques ~cliques:200 ~size:10 ~bridge_latency:5,
        4,
        17 );
      ( "weighted er",
        Gen.with_latencies (Rng.of_int 5) (Gen.Uniform (1, 8))
          (Gen.erdos_renyi_connected (Rng.of_int 5) ~n:120 ~p:0.08),
        6,
        11 );
    ]

(* The acceptance property: on random connected graphs with mixed
   latencies, the wheel engine's push-pull is round-for-round identical
   to the handler-based engine for the same seed. *)
let prop_pushpull_parity =
  QCheck.Test.make ~name:"wheel push-pull = engine push-pull (trajectories)" ~count:120
    QCheck.(triple (int_range 4 160) (int_range 0 100_000) (int_range 1 8))
    (fun (n, seed, lmax) ->
      let grng = Rng.of_int seed in
      let g =
        (* Stay above the G(n, p) connectivity threshold ln n / n. *)
        let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
        Gen.with_latencies grng (Gen.Uniform (1, lmax)) (Gen.erdos_renyi_connected grng ~n ~p)
      in
      let source = seed mod n in
      let old_r = Push_pull.broadcast (Rng.of_int (seed + 1)) g ~source ~max_rounds:100_000 in
      let new_r =
        Wheel.broadcast
          (Rng.of_int (seed + 1))
          (Csr.of_graph g) ~protocol:Wheel.Push_pull ~source ~max_rounds:100_000
      in
      old_r.Push_pull.rounds = new_r.Wheel.rounds
      && old_r.Push_pull.history = new_r.Wheel.history)

let prop_flood_parity =
  QCheck.Test.make ~name:"wheel flood = engine round-robin push (rounds)" ~count:60
    QCheck.(pair (int_range 4 100) (int_range 0 100_000))
    (fun (n, seed) ->
      let grng = Rng.of_int seed in
      let g =
        let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
        Gen.with_latencies grng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected grng ~n ~p)
      in
      let source = seed mod n in
      let old_r = Flooding.push_round_robin g ~source ~blocking:false ~max_rounds:100_000 in
      let new_r =
        Wheel.broadcast (Rng.of_int 0) (Csr.of_graph g) ~protocol:Wheel.Flood ~source
          ~max_rounds:100_000
      in
      old_r.Flooding.rounds = new_r.Wheel.rounds)

(* ------------------------------------------------------------------ *)
(* Shard infrastructure *)

let test_shard_bounds_owner () =
  List.iter
    (fun (n, k) ->
      let b = Shard.bounds ~n ~k in
      checki "bounds length" (k + 1) (Array.length b);
      checki "first bound" 0 b.(0);
      checki "last bound" n b.(k);
      for i = 0 to k - 1 do
        let size = b.(i + 1) - b.(i) in
        if size < n / k || size > ((n + k - 1) / k) then
          Alcotest.failf "shard %d of (n=%d, k=%d) has size %d" i n k size
      done;
      for v = 0 to n - 1 do
        let o = Shard.owner ~n ~k v in
        if not (b.(o) <= v && v < b.(o + 1)) then
          Alcotest.failf "owner(%d) = %d disagrees with bounds (n=%d, k=%d)" v o n k
      done)
    [ (1, 1); (4, 4); (10, 3); (40, 4); (17, 5); (1000, 7) ];
  (match Shard.bounds ~n:4 ~k:5 with
  | _ -> Alcotest.fail "k > n accepted"
  | exception Invalid_argument _ -> ());
  match Shard.bounds ~n:4 ~k:0 with
  | _ -> Alcotest.fail "k = 0 accepted"
  | exception Invalid_argument _ -> ()

let test_wheel_pool_exhausted () =
  (* Clique of 20 under push-pull: round 0 initiates 20 exchanges, so a
     2-slot hard ceiling exhausts immediately with the exact fields. *)
  let c = Csr.of_graph (Gen.clique 20) in
  Alcotest.check_raises "tiny pool exhausts"
    (Wheel.Pool_exhausted { used = 2; round = 0 })
    (fun () ->
      ignore
        (Wheel.broadcast ~pool_capacity:2 (Rng.of_int 5) c ~protocol:Wheel.Push_pull ~source:0
           ~max_rounds:10));
  (* A capacity the run fits under never steers the trajectory. *)
  let bare =
    Wheel.broadcast (Rng.of_int 5) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:10_000
  in
  let capped =
    Wheel.broadcast ~pool_capacity:64 (Rng.of_int 5) c ~protocol:Wheel.Push_pull ~source:0
      ~max_rounds:10_000
  in
  Alcotest.check trajectory_testable "capacity never steers the run" bare.Wheel.history
    capped.Wheel.history;
  match Wheel.create ~pool_capacity:0 (Rng.of_int 1) c ~protocol:Wheel.Push_pull ~source:0 with
  | _ -> Alcotest.fail "pool_capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Sharded-vs-sequential engine parity *)

(* CI matrixes the property over shard counts by setting
   GOSSIP_PARITY_DOMAINS (comma-separated); the default sweeps 1-4. *)
let parity_domains =
  match Sys.getenv_opt "GOSSIP_PARITY_DOMAINS" with
  | None -> [ 1; 2; 3; 4 ]
  | Some s ->
      let ds = String.split_on_char ',' s |> List.filter_map int_of_string_opt in
      if ds = [] then [ 1; 2; 3; 4 ] else ds

(* Pure fault plans (deterministic functions of their arguments), as
   the sharded engine's contract requires. *)
let parity_fault_plans =
  [
    ("none", Wheel.no_faults, 0);
    ( "drop",
      {
        Wheel.no_faults with
        Engine.drop =
          (fun ~initiator ~responder ~round -> (initiator + (3 * responder) + round) mod 5 = 0);
      },
      0 );
    ( "crash",
      { Wheel.no_faults with Engine.alive = (fun ~node ~round -> node mod 7 <> 3 || round < 2) },
      0 );
    ( "jitter",
      {
        Wheel.no_faults with
        Engine.jitter = (fun ~latency ~round -> latency + ((latency + round) mod 3));
      },
      2 );
  ]

let check_sharded_parity label base (r : Wheel.result) =
  Alcotest.check (Alcotest.option Alcotest.int) (label ^ " rounds") base.Wheel.rounds
    r.Wheel.rounds;
  Alcotest.check trajectory_testable (label ^ " trajectory") base.Wheel.history r.Wheel.history;
  checkb (label ^ " metrics") true (base.Wheel.metrics = r.Wheel.metrics);
  checkb (label ^ " informed set") true (Bytes.equal base.Wheel.informed r.Wheel.informed)

let test_sharded_parity_fixed () =
  let c = Csr.ring_of_cliques ~cliques:6 ~size:7 ~bridge_latency:9 in
  List.iter
    (fun protocol ->
      let name = Wheel.protocol_name protocol in
      let run d =
        Wheel.broadcast ~domains:d (Rng.of_int 13) c ~protocol ~source:5 ~max_rounds:100_000
      in
      let base = run 1 in
      List.iter
        (fun d -> check_sharded_parity (Printf.sprintf "%s domains=%d" name d) base (run d))
        parity_domains)
    [ Wheel.Push_pull; Wheel.Flood; Wheel.Random_contact ]

(* The tentpole acceptance property: for every protocol and every pure
   fault plan, the domain-sharded engine is bit-identical to the
   sequential wheel — rounds, trajectory, counters, and the final
   informed set. *)
let prop_sharded_parity =
  QCheck.Test.make ~name:"sharded wheel = sequential wheel (protocols x faults x domains)"
    ~count:40
    QCheck.(triple (int_range 4 80) (int_range 0 100_000) (int_range 0 11))
    (fun (n, seed, pick) ->
      let grng = Rng.of_int seed in
      let g =
        let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
        Gen.with_latencies grng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected grng ~n ~p)
      in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let protocol =
        match pick mod 3 with 0 -> Wheel.Push_pull | 1 -> Wheel.Flood | _ -> Wheel.Random_contact
      in
      let _, faults, max_jitter = List.nth parity_fault_plans (pick / 3) in
      let run d =
        Wheel.broadcast ~faults ~max_jitter ~domains:d
          (Rng.of_int (seed + 1))
          csr ~protocol ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

let test_sharded_dead_shard () =
  (* n = 40, k = 4: shard 1 owns exactly nodes 10..19 (bounds 0, 10,
     20, 30, 40).  Crash all of them from round 0, so one whole shard
     does nothing but drop traffic addressed to it: parity must hold
     and the dead nodes must stay dark. *)
  let rng = Rng.of_int 31 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n:40 ~p:0.25)
  in
  let csr = Csr.of_graph g in
  let faults =
    { Wheel.no_faults with Engine.alive = (fun ~node ~round:_ -> node < 10 || node >= 20) }
  in
  let run d =
    Wheel.broadcast ~faults ~domains:d (Rng.of_int 8) csr ~protocol:Wheel.Push_pull ~source:0
      ~max_rounds:300
  in
  let base = run 1 in
  let sharded = run 4 in
  check_sharded_parity "dead shard" base sharded;
  checkb "never completes" true (sharded.Wheel.rounds = None);
  for v = 10 to 19 do
    checki (Printf.sprintf "node %d dark" v) 0 (Char.code (Bytes.get sharded.Wheel.informed v))
  done;
  checkb "rumor still spread outside the dead shard" true
    (sharded.Wheel.metrics.Engine.deliveries > 0);
  checkb "losses counted" true (sharded.Wheel.metrics.Engine.dropped > 0)

let test_sharded_domains_validation () =
  let c = Csr.of_graph (Gen.path 3) in
  (match
     Wheel.broadcast ~domains:0 (Rng.of_int 1) c ~protocol:Wheel.Push_pull ~source:0
       ~max_rounds:10
   with
  | _ -> Alcotest.fail "domains = 0 accepted"
  | exception Invalid_argument _ -> ());
  (* More domains than nodes clamps to n and still matches. *)
  let base =
    Wheel.broadcast (Rng.of_int 2) c ~protocol:Wheel.Push_pull ~source:0 ~max_rounds:10_000
  in
  let clamped =
    Wheel.broadcast ~domains:8 (Rng.of_int 2) c ~protocol:Wheel.Push_pull ~source:0
      ~max_rounds:10_000
  in
  check_sharded_parity "clamped to n" base clamped

let test_sharded_telemetry () =
  (* The sharded engine feeds the same round histograms as the
     sequential one, plus the shard gauge and remote-traffic counters. *)
  let c = Csr.ring_of_cliques ~cliques:5 ~size:8 ~bridge_latency:4 in
  let run d =
    let reg = Registry.create () in
    let r =
      Wheel.broadcast ~telemetry:reg ~domains:d (Rng.of_int 6) c ~protocol:Wheel.Push_pull
        ~source:0 ~max_rounds:10_000
    in
    (reg, r)
  in
  let reg1, r1 = run 1 in
  let reg4, r4 = run 4 in
  check_sharded_parity "telemetry run" r1 r4;
  List.iter
    (fun name ->
      let h1 = Registry.histogram reg1 name and h4 = Registry.histogram reg4 name in
      checki (name ^ " count") (Registry.hist_count h1) (Registry.hist_count h4);
      checki (name ^ " sum") (Registry.hist_sum h1) (Registry.hist_sum h4))
    [ "wheel.round.deliveries"; "wheel.round.initiations"; "wheel.inflight" ];
  checki "wheel.shards gauge" 4 (Registry.gauge_value (Registry.gauge reg4 "wheel.shards"));
  let remote name = Registry.counter_value (Registry.counter reg4 name) in
  checkb "cross-shard initiations observed" true (remote "wheel.shard.remote.initiations" > 0);
  checkb "cross-shard responses observed" true (remote "wheel.shard.remote.responses" > 0)

(* The round loop is allocation-free by construction; the
   wheel.minor_words_per_round gauge is the enforced witness.  Both
   runtimes must come in under the exported budget — a regression that
   reintroduces a per-round closure or boxed int shows up here as a
   gauge in the hundreds. *)
let test_minor_words_gauge () =
  (* Long enough (ring diameter ⇒ 100+ rounds) to amortize the
     fixed-cost allocations inside the measured window (history
     arrays, worker closures, domain spawns). *)
  let c = Csr.ring_of_cliques ~cliques:24 ~size:8 ~bridge_latency:4 in
  let words d =
    let reg = Registry.create () in
    let r =
      Wheel.broadcast ~telemetry:reg ~domains:d (Rng.of_int 6) c ~protocol:Wheel.Push_pull
        ~source:0 ~max_rounds:10_000
    in
    checkb "completes" true (r.Wheel.rounds <> None);
    Registry.gauge_value (Registry.gauge reg "wheel.minor_words_per_round")
  in
  let seq = words 1 and sharded = words 3 in
  if seq > Wheel.minor_words_budget then
    Alcotest.failf "sequential gauge %d over budget %d" seq Wheel.minor_words_budget;
  if sharded > Wheel.minor_words_budget then
    Alcotest.failf "sharded gauge %d over budget %d" sharded Wheel.minor_words_budget

(* Regression for the gauge truncation fix: int_of_float alone rounded
   7.9 words/round down to 7 — the same bug class PR 3 fixed in busy_us
   and PR 8 in crash_fraction.  The gauge must round to nearest. *)
let test_gauge_rounding () =
  checki "7.9 rounds up" 8 (Wheel.gauge_of_minor_words ~total:79.0 ~rounds:10);
  checki "7.4 rounds down" 7 (Wheel.gauge_of_minor_words ~total:74.0 ~rounds:10);
  checki "exact stays" 7 (Wheel.gauge_of_minor_words ~total:70.0 ~rounds:10);
  (* the old [int_of_float] truncation mapped 0.999... to 0, hiding a
     one-word-per-round leak entirely *)
  checki "just under 1 rounds up" 1 (Wheel.gauge_of_minor_words ~total:999.0 ~rounds:1000)

(* The mailbox buffer's doubling loop is clamped: a reservation beyond
   the ceiling raises the typed Buf_overflow instead of wrapping
   negative and spinning (or handing Bigarray a bogus size). *)
let test_buf_overflow () =
  let b = Shard.Buf.create () in
  Shard.Buf.push b 17;
  (match Shard.Buf.reserve b max_int with
  | exception Shard.Buf_overflow { need; limit } ->
      (* len + max_int wraps negative: reported as the raw need *)
      checkb "need reported" true (need < 0 || need > limit)
  | _ -> Alcotest.fail "reserve max_int must raise Buf_overflow");
  (match Shard.Buf.reserve b (Shard.Buf.max_capacity) with
  | exception Shard.Buf_overflow { need; limit } ->
      checki "need = len + k" (1 + Shard.Buf.max_capacity) need;
      checki "limit is the ceiling" Shard.Buf.max_capacity limit
  | _ -> Alcotest.fail "reserve past the ceiling must raise Buf_overflow");
  (match Shard.Buf.reserve b (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative reservation must raise Invalid_argument");
  (* the failed reservations left the buffer intact *)
  checki "length unchanged" 1 (Shard.Buf.length b);
  checki "content unchanged" 17 (Shard.Buf.get b 0)

(* Multi-word payload records: the mailbox discipline the wheel engine
   uses for kernels with msg_words > 1 — a scalar column of record
   count m paired with a payload column of m * mw cells, record i's
   words at [i*mw, (i+1)*mw).  reserve/set appends must land exactly
   where the drain loop reads, across doubling growth, for any record
   mix of reserve-then-set and plain push. *)
let prop_buf_multiword_roundtrip =
  QCheck.Test.make ~name:"Buf reserve/set multi-word records drain at i*mw" ~count:200
    QCheck.(triple (int_range 1 7) (int_range 0 200) (int_range 0 100_000))
    (fun (mw, records, seed) ->
      let scalar = Shard.Buf.create () and pay = Shard.Buf.create () in
      let word i w = ((i * 31) + (w * 7) + seed) land 0xFFFF in
      for i = 0 to records - 1 do
        Shard.Buf.push scalar (i + seed);
        if (i + seed) mod 2 = 0 then begin
          let base = Shard.Buf.reserve pay mw in
          if base <> i * mw then
            QCheck.Test.fail_reportf "reserve base %d at record %d (mw %d)" base i mw;
          for w = 0 to mw - 1 do
            Shard.Buf.set pay (base + w) (word i w)
          done
        end
        else
          for w = 0 to mw - 1 do
            Shard.Buf.push pay (word i w)
          done
      done;
      let ok = ref (Shard.Buf.length scalar = records && Shard.Buf.length pay = records * mw) in
      for i = 0 to records - 1 do
        if Shard.Buf.get scalar i <> i + seed then ok := false;
        for w = 0 to mw - 1 do
          if Shard.Buf.unsafe_get pay ((i * mw) + w) <> word i w then ok := false
        done
      done;
      Shard.Buf.clear scalar;
      Shard.Buf.clear pay;
      !ok && Shard.Buf.length pay = 0)

(* ------------------------------------------------------------------ *)
(* int32 range contract: every CSR constructor rejects out-of-range
   node ids and latencies with the typed I32.Overflow — never a
   silently wrapped value. *)

let is_overflow = function I32.Overflow _ -> true | _ -> false

let prop_csr_rejects_latency_overflow =
  QCheck.Test.make ~name:"csr constructors reject out-of-int32-range latencies" ~count:30
    QCheck.(int_range 1 (1 lsl 20))
    (fun excess ->
      let big = I32.max_value + excess in
      let raises f = match f () with exception e -> is_overflow e | _ -> false in
      (* of_graph: a valid graph holding one oversized latency *)
      raises (fun () -> Csr.of_graph (Graph.of_edges ~n:3 [ (0, 1, big); (1, 2, 1) ]))
      (* of_undirected_arrays: same edge list, flat-array path *)
      && raises (fun () ->
             Csr.of_undirected_arrays ~n:3 [| 0; 1 |] [| 1; 2 |] [| big; 1 |] ~count:2)
      (* with_latencies: a degenerate uniform spec pinned above range *)
      && raises (fun () ->
             Csr.with_latencies (Rng.of_int 3)
               (Gen.Uniform (big, big))
               (Csr.ring_of_cliques ~cliques:3 ~size:2 ~bridge_latency:1))
      (* generators: the bridge latency is checked before any allocation *)
      && raises (fun () -> Csr.ring_of_cliques ~cliques:3 ~size:2 ~bridge_latency:big)
      && raises (fun () ->
             Csr.braided_ring ~cliques:3 ~size:2 ~bridges:1 ~bridge_latency:big))

let test_csr_rejects_node_count_overflow () =
  (* 2^16 cliques x 2^16 nodes = 2^32 nodes > int32: the count is
     rejected before the generator allocates anything. *)
  match Csr.ring_of_cliques ~cliques:65536 ~size:65536 ~bridge_latency:1 with
  | exception I32.Overflow { what = _; value } -> checki "overflowing n" 4294967296 value
  | _ -> Alcotest.fail "2^32-node generator must raise I32.Overflow"

let test_spanner_rejects_overflow () =
  let raises f = match f () with exception e -> is_overflow e | _ -> false in
  checkb "oversized peer id" true
    (raises (fun () -> Csr.of_oriented_spanner [| [| (I32.max_value + 1, 1) |]; [||] |]));
  checkb "oversized latency" true
    (raises (fun () -> Csr.of_oriented_spanner [| [| (1, I32.max_value + 1) |]; [||] |]));
  (* negatives keep their historical Invalid_argument, they are not
     int32 overflows *)
  (match Csr.of_oriented_spanner [| [| (-1, 1) |]; [||] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative peer must stay Invalid_argument")

(* Dynamic scenarios ride the same parity contract as static fault
   plans: for drifting latencies and churn compiled by lib/dyn, the
   domain-sharded engine is bit-identical to the sequential wheel. *)
let prop_sharded_parity_scenario =
  let module Scenario = Gossip_dyn.Scenario in
  QCheck.Test.make
    ~name:"sharded wheel = sequential wheel (dynamic scenarios x protocols x domains)"
    ~count:25
    QCheck.(triple (int_range 8 60) (int_range 0 100_000) (int_range 0 8))
    (fun (n, seed, pick) ->
      let grng = Rng.of_int seed in
      let g =
        let p = min 1.0 ((log (float_of_int n) +. 3.0) /. float_of_int n) in
        Gen.with_latencies grng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected grng ~n ~p)
      in
      let csr = Csr.of_graph g in
      let source = seed mod n in
      let protocol =
        match pick mod 3 with 0 -> Wheel.Push_pull | 1 -> Wheel.Flood | _ -> Wheel.Random_contact
      in
      let rules =
        match pick / 3 with
        | 0 ->
            [
              {
                Scenario.schedule = Scenario.Linear { rate = 0.25; cap = 3.0 };
                filter = Scenario.Lat_ge 3;
              };
            ]
        | 1 -> [ { Scenario.schedule = Scenario.Step { at = 4; factor = 2.0 }; filter = Scenario.All } ]
        | _ ->
            [
              {
                Scenario.schedule = Scenario.Diurnal { amplitude = 1.0; period = 12; phase = 2 };
                filter = Scenario.Endpoint_mod { modulus = 3; residue = 1 };
              };
            ]
      in
      let scen =
        {
          Scenario.static with
          Scenario.seed;
          rules;
          churn = [ Scenario.Random_churn { fraction = 0.2; leave = 2; down = 5; period = 3 } ];
        }
      in
      let c = Scenario.compile scen ~csr ~source in
      let run d =
        Wheel.broadcast ~env:c.Scenario.env ~wheel_latency:c.Scenario.wheel_latency ~domains:d
          (Rng.of_int (seed + 1))
          csr ~protocol ~source ~max_rounds:400
      in
      let base = run 1 in
      List.for_all
        (fun d ->
          let r = run d in
          r.Wheel.rounds = base.Wheel.rounds
          && r.Wheel.history = base.Wheel.history
          && r.Wheel.metrics = base.Wheel.metrics
          && Bytes.equal r.Wheel.informed base.Wheel.informed)
        parity_domains)

let () =
  Alcotest.run "gossip_scale"
    [
      ( "csr",
        [
          Alcotest.test_case "of_graph roundtrip" `Quick test_of_graph_roundtrip;
          Alcotest.test_case "ring-of-cliques direct = Gen" `Quick
            test_ring_of_cliques_matches_gen;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert_csr;
          Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz_csr;
          Alcotest.test_case "with_latencies" `Quick test_with_latencies;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          qtest prop_csr_roundtrip;
        ] );
      ( "int32-contract",
        [
          qtest prop_csr_rejects_latency_overflow;
          Alcotest.test_case "node-count overflow" `Quick test_csr_rejects_node_count_overflow;
          Alcotest.test_case "spanner overflow" `Quick test_spanner_rejects_overflow;
          Alcotest.test_case "buf overflow" `Quick test_buf_overflow;
          qtest prop_buf_multiword_roundtrip;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "push-pull completes" `Quick test_wheel_pushpull_completes;
          Alcotest.test_case "flood + random-contact" `Quick
            test_wheel_flood_and_random_contact_complete;
          Alcotest.test_case "single node" `Quick test_wheel_single_node;
          Alcotest.test_case "drop everything" `Quick test_wheel_drop_everything;
          Alcotest.test_case "crash isolates" `Quick test_wheel_crash_isolates;
          Alcotest.test_case "jitter bound" `Quick test_wheel_jitter_bound;
          Alcotest.test_case "declared max jitter" `Quick test_wheel_max_jitter_declared;
          Alcotest.test_case "deadline" `Quick test_wheel_deadline;
          Alcotest.test_case "metrics match engine" `Quick test_wheel_metrics_match_engine;
        ] );
      ( "parity",
        [
          Alcotest.test_case "fixed cases" `Quick test_parity_fixed_cases;
          qtest prop_pushpull_parity;
          qtest prop_flood_parity;
        ] );
      ( "shard",
        [
          Alcotest.test_case "bounds and owner" `Quick test_shard_bounds_owner;
          Alcotest.test_case "pool exhausted" `Quick test_wheel_pool_exhausted;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "fixed cases, all protocols" `Quick test_sharded_parity_fixed;
          qtest prop_sharded_parity;
          qtest prop_sharded_parity_scenario;
          Alcotest.test_case "minor-words gauge under budget" `Quick test_minor_words_gauge;
          Alcotest.test_case "gauge rounding" `Quick test_gauge_rounding;
          Alcotest.test_case "dead shard" `Quick test_sharded_dead_shard;
          Alcotest.test_case "domains validation + clamp" `Quick
            test_sharded_domains_validation;
          Alcotest.test_case "telemetry parity + shard metrics" `Quick test_sharded_telemetry;
        ] );
    ]
