(* Tests for latency discovery (Section 4.2). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Discovery = Gossip_core.Discovery

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_probe_discovers_all () =
  let rng = Rng.of_int 1 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.cycle 10) in
  let r = Discovery.probe g ~d_bound:(Graph.max_latency g) in
  checkb "complete" true r.Discovery.complete

let test_probe_latencies_correct () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 3); (1, 2, 5) ] in
  let r = Discovery.probe g ~d_bound:10 in
  checki "lat(0,1)" 3 (List.assoc 1 r.Discovery.known.(0));
  checki "lat(1,0)" 3 (List.assoc 0 r.Discovery.known.(1));
  checki "lat(1,2)" 5 (List.assoc 2 r.Discovery.known.(1))

let test_probe_bound_filters () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 2); (1, 2, 9) ] in
  let r = Discovery.probe g ~d_bound:3 in
  checkb "fast edge known" true (List.mem_assoc 1 r.Discovery.known.(0));
  checkb "slow edge unknown" false (List.mem_assoc 2 r.Discovery.known.(1));
  checkb "incomplete for max latency" true r.Discovery.complete
  (* complete refers to edges of latency <= d_bound only *)

let test_probe_rounds_formula () =
  (* Rounds = Delta + d_bound exactly. *)
  let g = Gen.star 8 in
  let r = Discovery.probe g ~d_bound:4 in
  checki "Delta + d" (Graph.max_degree g + 4) r.Discovery.rounds

let test_probe_doubling_reaches_target () =
  let rng = Rng.of_int 2 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 7)) (Gen.cycle 8) in
  let r = Discovery.probe_doubling g ~target:(Graph.max_latency g) in
  checkb "complete" true r.Discovery.complete;
  (* Accumulated rounds exceed a single probe's. *)
  let single = Discovery.probe g ~d_bound:(Graph.max_latency g) in
  checkb "doubling costs more" true (r.Discovery.rounds >= single.Discovery.rounds)

let test_probe_invalid () =
  Alcotest.check_raises "bad bound" (Invalid_argument "Discovery.probe: need d_bound >= 1")
    (fun () -> ignore (Discovery.probe (Gen.path 3) ~d_bound:0))

let prop_probe_complete_on_random =
  QCheck.Test.make ~name:"probe with d=lmax discovers everything" ~count:20
    QCheck.(pair (int_range 4 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 9)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      (Discovery.probe g ~d_bound:(Graph.max_latency g)).Discovery.complete)

(* ------------------------------------------------------------------ *)
(* Round accounting *)

let test_probe_doubling_accounting () =
  (* Accumulated rounds are exactly the sum of per-attempt schedules:
     Σ (Δ + d) over d = 1, 2, 4, ..., first power of two >= target. *)
  let rng = Rng.of_int 3 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.cycle 9) in
  let target = Graph.max_latency g in
  let r = Discovery.probe_doubling g ~target in
  let delta = Graph.max_degree g in
  let expected =
    let rec go d acc =
      let acc = acc + Discovery.probe_rounds ~delta ~d_bound:d in
      if d >= target then acc else go (2 * d) acc
    in
    go 1 0
  in
  checki "rounds = sum of schedules" expected r.Discovery.rounds;
  checkb "complete at target = lmax" true r.Discovery.complete;
  (* Single-pass rounds come from the same oracle. *)
  let single = Discovery.probe g ~d_bound:4 in
  checki "probe rounds oracle" (Discovery.probe_rounds ~delta ~d_bound:4) single.Discovery.rounds

(* ------------------------------------------------------------------ *)
(* The scale probe kernel against the reference probe *)

module Csr = Gossip_scale.Csr

(* The discovered per-direction measurements must coincide with the
   reference probe's known lists: same edges, same latencies, same
   schedule length.  Both cursors walk the same ascending-neighbor
   rows, so this is exact, not statistical. *)
let check_probe_scale_parity n seed d_bound =
  let rng = Rng.of_int seed in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected rng ~n ~p:0.3)
  in
  let core = Discovery.probe g ~d_bound in
  let csr = Csr.of_graph g in
  let r = Discovery.probe_scale (Rng.of_int (seed + 1)) csr ~d_bound in
  if r.Discovery.s_rounds <> core.Discovery.rounds then
    Alcotest.failf "rounds diverge: scale %d vs core %d" r.Discovery.s_rounds
      core.Discovery.rounds;
  if r.Discovery.s_complete <> core.Discovery.complete then
    Alcotest.failf "complete flags diverge (scale %b)" r.Discovery.s_complete;
  let o = Csr.oriented_of_csr csr in
  for u = 0 to n - 1 do
    let i = ref (Gossip_scale.I32.get o.Csr.o_row_ptr u) in
    Csr.oriented_iter_out o u (fun peer _lat ->
        let measured = r.Discovery.s_lat.(!i) in
        (match (List.assoc_opt peer core.Discovery.known.(u), measured) with
        | Some l, m when m = l -> ()
        | None, -1 -> ()
        | expected, m ->
            Alcotest.failf "edge %d->%d: scale measured %d, reference %s" u peer m
              (match expected with Some l -> string_of_int l | None -> "nothing"))
        ;
        incr i)
  done;
  (* The discovered CSR holds exactly the both-ways-measured edges. *)
  let known_undirected = ref 0 in
  Graph.iter_edges
    (fun { Graph.u; v; latency = _ } ->
      if List.mem_assoc v core.Discovery.known.(u) && List.mem_assoc u core.Discovery.known.(v)
      then incr known_undirected)
    g;
  checki "discovered edge count" !known_undirected r.Discovery.s_edges_known;
  checki "discovered CSR edge count" !known_undirected (Csr.m r.Discovery.s_discovered)

let prop_probe_scale_parity =
  QCheck.Test.make ~name:"scale discovery kernel = reference probe" ~count:25
    QCheck.(triple (int_range 4 40) (int_range 0 100_000) (int_range 1 8))
    (fun (n, seed, d_bound) ->
      check_probe_scale_parity n seed d_bound;
      true)

let test_probe_scale_sharded_parity () =
  let rng = Rng.of_int 21 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n:60 ~p:0.15)
  in
  let csr = Csr.of_graph g in
  let run d = Discovery.probe_scale ?domains:d (Rng.of_int 9) csr ~d_bound:4 in
  let base = run None in
  List.iter
    (fun d ->
      let r = run (Some d) in
      checki (Printf.sprintf "rounds domains=%d" d) base.Discovery.s_rounds r.Discovery.s_rounds;
      checkb
        (Printf.sprintf "measurements domains=%d" d)
        true
        (base.Discovery.s_lat = r.Discovery.s_lat);
      checkb
        (Printf.sprintf "discovered graph domains=%d" d)
        true
        (Csr.equal base.Discovery.s_discovered r.Discovery.s_discovered))
    [ 2; 3; 4 ]

let test_probe_scale_faults_lose_edges () =
  (* A drop-everything plan measures nothing; the completeness audit
     says so instead of pretending. *)
  let csr = Csr.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:2 in
  let faults =
    {
      Gossip_scale.Wheel_engine.no_faults with
      Gossip_sim.Engine.drop = (fun ~initiator:_ ~responder:_ ~round:_ -> true);
    }
  in
  let r = Discovery.probe_scale ~faults (Rng.of_int 2) csr ~d_bound:5 in
  checkb "nothing discovered" true (r.Discovery.s_edges_known = 0);
  checkb "not complete" false r.Discovery.s_complete

let () =
  Alcotest.run "gossip_discovery"
    [
      ( "discovery",
        [
          Alcotest.test_case "discovers all" `Quick test_probe_discovers_all;
          Alcotest.test_case "latencies correct" `Quick test_probe_latencies_correct;
          Alcotest.test_case "bound filters" `Quick test_probe_bound_filters;
          Alcotest.test_case "rounds formula" `Quick test_probe_rounds_formula;
          Alcotest.test_case "doubling" `Quick test_probe_doubling_reaches_target;
          Alcotest.test_case "doubling accounting" `Quick test_probe_doubling_accounting;
          Alcotest.test_case "invalid" `Quick test_probe_invalid;
          qtest prop_probe_complete_on_random;
        ] );
      ( "discovery-scale",
        [
          qtest prop_probe_scale_parity;
          Alcotest.test_case "sharded parity" `Quick test_probe_scale_sharded_parity;
          Alcotest.test_case "faults lose edges" `Quick test_probe_scale_faults_lose_edges;
        ] );
    ]
