(* The serve daemon: framing, wire-protocol codecs, the bounded job
   queue, and the full socket loop driven in-process.

   The server tests run a real daemon (socket loop + worker thread) on
   a Unix socket under [Filename.get_temp_dir_name], with signals off
   and a fast tick; determinism is enforced where it matters — job
   results fetched over the socket must be byte-identical (modulo
   wall-clock fields) to a direct [Sweep.run_ft] of the same specs. *)

module Frame = Gossip_serve.Frame
module P = Gossip_serve.Protocol
module Jobq = Gossip_serve.Jobq
module Server = Gossip_serve.Server
module Client = Gossip_serve.Client
module Live = Gossip_obs.Live
module Sweep = Gossip_sweep.Sweep
module Wheel = Gossip_scale.Wheel_engine
module Lat = Gossip_graph.Gen
module Json = Gossip_util.Json

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_basic () =
  let r = Frame.reader () in
  Alcotest.(check (list string))
    "two frames, one feed"
    [ "{\"a\":1}"; "{\"b\":2}" ]
    (Frame.feed_string r "{\"a\":1}\n{\"b\":2}\n");
  Alcotest.(check int) "nothing pending" 0 (Frame.pending r)

let test_frame_torn () =
  let r = Frame.reader () in
  Alcotest.(check (list string)) "torn line waits" [] (Frame.feed_string r "{\"a\"");
  Alcotest.(check int) "bytes pending" 4 (Frame.pending r);
  Alcotest.(check (list string))
    "completed on next feed" [ "{\"a\":1}" ]
    (Frame.feed_string r ":1}\n")

let test_frame_byte_at_a_time () =
  let r = Frame.reader () in
  let wire = "{\"x\":true}\n{\"y\":null}\n" in
  let got = ref [] in
  String.iter (fun c -> got := !got @ Frame.feed_string r (String.make 1 c)) wire;
  Alcotest.(check (list string))
    "one byte per feed" [ "{\"x\":true}"; "{\"y\":null}" ] !got

let test_frame_crlf_blank () =
  let r = Frame.reader () in
  Alcotest.(check (list string))
    "\\r stripped, blanks skipped" [ "{}" ]
    (Frame.feed_string r "\n  \n{}\r\n")

let test_frame_oversized () =
  let r = Frame.reader ~max_line:8 () in
  let lines = Frame.feed_string r (String.make 100 'x' ^ "\n{\"ok\":1}\n") in
  Alcotest.(check (list string)) "oversized frame dropped" [ "{\"ok\":1}" ] lines;
  Alcotest.(check int) "drop counted" 1 (Frame.oversized r)

(* ------------------------------------------------------------------ *)
(* Live mailbox *)

let test_live_mailbox () =
  let m = Live.create ~capacity:3 () in
  List.iter (Live.publish m) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "two evicted" 2 (Live.dropped m);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ] (Live.drain m);
  Alcotest.(check int) "drained" 0 (Live.pending m)

(* ------------------------------------------------------------------ *)
(* Codec round-trips through torn frames (qcheck) *)

module QGen = QCheck.Gen

let family_gen =
  QGen.oneof
    [
      QGen.map2
        (fun size bridge -> Sweep.Ring_of_cliques { size; bridge_latency = bridge })
        (QGen.int_range 3 16) (QGen.int_range 1 24);
      QGen.map (fun attach -> Sweep.Barabasi_albert { attach }) (QGen.int_range 1 8);
      QGen.map2
        (fun k beta -> Sweep.Watts_strogatz { k; beta })
        (QGen.int_range 2 10)
        (QGen.oneofl [ 0.0; 0.1; 0.25; 0.5; 1.0 ]);
    ]

let latency_gen =
  QGen.oneof
    [
      QGen.return Lat.Unit;
      QGen.map (fun k -> Lat.Fixed k) (QGen.int_range 1 16);
      QGen.map2 (fun lo span -> Lat.Uniform (lo, lo + span)) (QGen.int_range 1 8)
        (QGen.int_range 0 8);
      QGen.map2
        (fun (fast, slow) p_fast -> Lat.Bimodal { fast; slow; p_fast })
        (QGen.pair (QGen.int_range 1 4) (QGen.int_range 5 40))
        (QGen.oneofl [ 0.25; 0.5; 0.9 ]);
      QGen.map2
        (fun (min_latency, max_latency) exponent ->
          Lat.Power_law { min_latency; max_latency; exponent })
        (QGen.pair (QGen.int_range 1 4) (QGen.int_range 5 64))
        (QGen.oneofl [ 1.5; 2.0; 2.5 ]);
    ]

let protocol_gen = QGen.oneofl (List.filter_map Wheel.protocol_of_string Wheel.known_protocols)

(* A representative dynamic scenario for the optional submit field
   (drift on slow edges plus one rejoining node). *)
let drift_scenario =
  Gossip_dyn.Scenario.of_string
    {|{"name": "drift", "seed": 3,
       "schedules": [{"kind": "linear", "rate": 0.25, "cap": 2,
                      "filter": {"kind": "lat-ge", "latency": 4}}],
       "churn": [{"node": 7, "leave": 3, "rejoin": 9}]}|}

let spec_gen =
  let open QGen in
  let* family = family_gen in
  let* n = int_range 1 100_000 in
  let* protocol = protocol_gen in
  let* trials = int_range 1 16 in
  let* base_seed = int_range 0 1_000_000 in
  let* max_rounds = int_range 1 1_000_000 in
  let* latency = opt latency_gen in
  let* scenario = opt (oneofl [ Gossip_dyn.Scenario.static; drift_scenario ]) in
  return { P.family; n; protocol; trials; base_seed; max_rounds; latency; scenario }

let job_id_gen =
  QGen.string_size ~gen:(QGen.oneofl [ 'a'; 'z'; '0'; '-'; ' '; '"'; '\\'; '{' ])
    (QGen.int_range 1 12)

let request_gen =
  let open QGen in
  oneof
    [
      return P.Ping;
      map (fun s -> P.Submit s) spec_gen;
      map (fun j -> P.Status j) job_id_gen;
      map (fun j -> P.Watch j) job_id_gen;
      map (fun j -> P.Cancel j) job_id_gen;
      map (fun j -> P.Results j) job_id_gen;
      return P.Stats;
      return P.Shutdown;
    ]

let state_gen = QGen.oneofl [ P.Queued; P.Running; P.Done; P.Failed; P.Cancelled ]

let status_gen =
  let open QGen in
  let* s_job = job_id_gen in
  let* s_state = state_gen in
  let* s_trials = int_range 1 32 in
  let* s_completed = int_range 0 32 in
  let* s_failed = int_range 0 32 in
  let* s_position = opt (int_range 0 64) in
  return { P.s_job; s_state; s_trials; s_completed; s_failed; s_position }

let row_gen =
  let open QGen in
  let* i = int_range 0 1000 in
  let* s = job_id_gen in
  let* f = oneofl [ 0.5; 1.25; 3.75 ] in
  return (Json.Obj [ ("n", Json.Int i); ("tag", Json.String s); ("x", Json.Float f) ])

let scalars_gen =
  QGen.small_list (QGen.pair (QGen.string_size ~gen:(QGen.char_range 'a' 'z') (QGen.int_range 1 8)) QGen.small_nat)

let error_code_gen =
  QGen.oneofl [ P.Bad_request; P.Version_mismatch; P.Unknown_job; P.Queue_full; P.Shutting_down ]

let response_gen =
  let open QGen in
  oneof
    [
      map2 (fun proto server -> P.Pong { proto; server }) small_nat job_id_gen;
      map2
        (fun job (position, trials) -> P.Submitted { job; position; trials })
        job_id_gen
        (pair small_nat (int_range 1 16));
      map (fun s -> P.Job_status s) status_gen;
      map (fun job -> P.Watching { job }) job_id_gen;
      (let* p_job = job_id_gen in
       let* p_trial = int_range 0 15 in
       let* p_trials = int_range 1 16 in
       let* p_seed = int_range 0 100_000 in
       let* p_round = small_nat in
       let* p_informed = small_nat in
       let* p_n = int_range 1 100_000 in
       return (P.Progress { p_job; p_trial; p_trials; p_seed; p_round; p_informed; p_n }));
      (let* job = job_id_gen in
       let* trial = int_range 0 15 in
       let* trials = int_range 1 16 in
       let* seed = int_range 0 100_000 in
       let* rounds = opt small_nat in
       let* ok = bool in
       return (P.Trial_done { job; trial; trials; seed; rounds; ok }));
      map (fun s -> P.Job_done s) status_gen;
      map2 (fun job row -> P.Result_row { job; row }) job_id_gen row_gen;
      map2 (fun job count -> P.Results_end { job; count }) job_id_gen small_nat;
      map2 (fun counters gauges -> P.Server_stats { counters; gauges }) scalars_gen scalars_gen;
      map2 (fun job state -> P.Cancel_ok { job; state }) job_id_gen state_gen;
      return P.Bye;
      map2 (fun code message -> P.Error { code; message }) error_code_gen job_id_gen;
    ]

(* Feed [wire] through a fresh reader, splitting at the byte
   boundaries derived from [cuts] — the codec must be oblivious to how
   the stream was torn. *)
let lines_via_torn_reader wire cuts =
  let n = String.length wire in
  let cuts = List.sort_uniq compare (0 :: n :: List.map (fun c -> c mod (n + 1)) cuts) in
  let r = Frame.reader () in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        go (acc @ Frame.feed_string r (String.sub wire a (b - a))) rest
    | _ -> acc
  in
  go [] cuts

let decode_all of_json lines =
  List.map
    (fun line ->
      match Json.of_string line with
      | Error msg -> QCheck.Test.fail_reportf "undecodable line %S: %s" line msg
      | Ok j -> (
          match of_json j with
          | Ok v -> v
          | Error msg -> QCheck.Test.fail_reportf "codec rejected %S: %s" line msg))
    lines

let request_roundtrip =
  QCheck.Test.make ~name:"request codecs round-trip through torn frames" ~count:300
    (QCheck.make
       ~print:(fun (reqs, _) ->
         String.concat "" (List.map (fun r -> Frame.frame (P.request_to_json r)) reqs))
       (QGen.pair
          (QGen.list_size (QGen.int_range 1 8) request_gen)
          (QGen.list_size (QGen.int_range 0 40) (QGen.int_range 0 10_000))))
    (fun (reqs, cuts) ->
      let wire = String.concat "" (List.map (fun r -> Frame.frame (P.request_to_json r)) reqs) in
      let decoded =
        decode_all
          (fun j -> Result.map_error snd (P.request_of_json j))
          (lines_via_torn_reader wire cuts)
      in
      decoded = reqs)

let response_roundtrip =
  QCheck.Test.make ~name:"response codecs round-trip through torn frames" ~count:300
    (QCheck.make
       ~print:(fun (resps, _) ->
         String.concat "" (List.map (fun r -> Frame.frame (P.response_to_json r)) resps))
       (QGen.pair
          (QGen.list_size (QGen.int_range 1 8) response_gen)
          (QGen.list_size (QGen.int_range 0 40) (QGen.int_range 0 10_000))))
    (fun (resps, cuts) ->
      let wire =
        String.concat "" (List.map (fun r -> Frame.frame (P.response_to_json r)) resps)
      in
      let decoded = decode_all P.response_of_json (lines_via_torn_reader wire cuts) in
      decoded = resps)

(* ------------------------------------------------------------------ *)
(* Jobq *)

let small_spec ?latency ?scenario ?(trials = 2) ?(seed = 42) () =
  {
    P.family = Sweep.Ring_of_cliques { size = 8; bridge_latency = 8 };
    n = 64;
    protocol = Wheel.Push_pull;
    trials;
    base_seed = seed;
    max_rounds = 500;
    latency;
    scenario;
  }

let test_jobq_lifecycle () =
  let q = Jobq.create ~capacity:4 () in
  let sub = Result.get_ok (Jobq.submit q (small_spec ())) in
  Alcotest.(check string) "first id" "job-1" sub.Jobq.id;
  Alcotest.(check int) "position" 0 sub.Jobq.position;
  Alcotest.(check int) "trials expanded" 2 sub.Jobq.trials;
  let st = Option.get (Jobq.status q "job-1") in
  Alcotest.(check bool) "queued" true (st.P.s_state = P.Queued);
  Alcotest.(check (option int)) "queue position" (Some 0) st.P.s_position;
  let id = Option.get (Jobq.next q) in
  Alcotest.(check string) "claimed oldest" "job-1" id;
  Alcotest.(check bool) "running" true
    ((Option.get (Jobq.status q id)).P.s_state = P.Running);
  Jobq.mark_trial q ~id ~trial:0 ~ok:true ~row:(Json.Obj [ ("seed", Json.Int 42) ]) ();
  Jobq.mark_trial q ~id ~trial:1 ~ok:false ();
  Alcotest.(check bool) "failed trials make the job Failed" true
    (Jobq.finish q id = Some P.Failed);
  let st = Option.get (Jobq.status q id) in
  Alcotest.(check (pair int int)) "counts" (1, 1) (st.P.s_completed, st.P.s_failed);
  Alcotest.(check int) "only ok rows" 1 (List.length (Jobq.rows q id))

let test_jobq_backpressure () =
  let q = Jobq.create ~capacity:2 () in
  ignore (Result.get_ok (Jobq.submit q (small_spec ())));
  ignore (Result.get_ok (Jobq.submit q (small_spec ())));
  (match Jobq.submit q (small_spec ()) with
  | Error `Full -> ()
  | Ok _ -> Alcotest.fail "third submit must be rejected");
  (* a terminal entry frees its slot *)
  let id = Option.get (Jobq.next q) in
  Jobq.mark_trial q ~id ~trial:0 ~ok:true ();
  Jobq.mark_trial q ~id ~trial:1 ~ok:true ();
  ignore (Jobq.finish q id);
  (match Jobq.submit q (small_spec ()) with
  | Ok _ -> ()
  | Error `Full -> Alcotest.fail "slot must be free after finish")

let test_jobq_cancel_and_ids () =
  let q = Jobq.create () in
  let a = Result.get_ok (Jobq.submit q (small_spec ())) in
  Alcotest.(check bool) "cancel queued is immediate" true
    (Jobq.cancel q a.Jobq.id = Some P.Cancelled);
  (* the cancelled entry never reaches the worker *)
  Jobq.release q;
  Alcotest.(check bool) "released queue yields nothing" true (Jobq.next q = None);
  Jobq.absorb q "job-17";
  let b = Result.get_ok (Jobq.submit q (small_spec ())) in
  Alcotest.(check string) "absorbed ids are never reissued" "job-18" b.Jobq.id

let test_jobq_requeue_head () =
  let q = Jobq.create () in
  let a = Result.get_ok (Jobq.submit q (small_spec ())) in
  let b = Result.get_ok (Jobq.submit q (small_spec ())) in
  let id = Option.get (Jobq.next q) in
  Alcotest.(check string) "fifo claim" a.Jobq.id id;
  Jobq.requeue q id;
  Alcotest.(check bool) "requeued back to Queued" true
    ((Option.get (Jobq.status q id)).P.s_state = P.Queued);
  Alcotest.(check (list string))
    "requeued job heads the incomplete list"
    [ a.Jobq.id; b.Jobq.id ]
    (Jobq.incomplete q)

(* ------------------------------------------------------------------ *)
(* In-process server harness *)

let sock_path =
  let c = ref 0 in
  fun () ->
    incr c;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gossipd-t%d-%d.sock" (Unix.getpid ()) !c)

(* A gate for [before_job]: jobs claimed by the worker block until the
   test releases them, keeping queue occupancy deterministic. *)
let gate () =
  let m = Mutex.create () and cv = Condition.create () and open_ = ref false in
  let hold _id =
    Mutex.lock m;
    while not !open_ do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    open_ := true;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  (hold, release)

let start_server cfg =
  let m = Mutex.create () and cv = Condition.create () and ready = ref false in
  let cfg =
    {
      cfg with
      Server.install_signals = false;
      tick_s = 0.005;
      on_listening =
        Some
          (fun () ->
            Mutex.lock m;
            ready := true;
            Condition.signal cv;
            Mutex.unlock m);
    }
  in
  let th = Thread.create Server.run cfg in
  Mutex.lock m;
  while not !ready do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  th

let stop_server sock th =
  (try Client.with_connect sock (fun c -> ignore (Client.rpc c P.Shutdown))
   with _ -> ());
  Thread.join th

let with_server ?(capacity = 16) ?journal ?before_job f =
  let sock = sock_path () in
  let cfg =
    { (Server.default ~socket_path:sock) with Server.capacity; journal; before_job }
  in
  let th = start_server cfg in
  Fun.protect ~finally:(fun () -> stop_server sock th) (fun () -> f sock)

let submit_ok c spec =
  match Client.rpc c (P.Submit spec) with
  | P.Submitted { job; _ } -> job
  | r -> Alcotest.failf "submit: unexpected %s" (Json.to_string (P.response_to_json r))

let rec wait_terminal ?(deadline = 30.0) c job =
  match Client.rpc c (P.Status job) with
  | P.Job_status s -> (
      match s.P.s_state with
      | P.Done | P.Failed | P.Cancelled -> s
      | P.Queued | P.Running ->
          if deadline <= 0.0 then Alcotest.failf "job %s never finished" job
          else begin
            Thread.delay 0.01;
            wait_terminal ~deadline:(deadline -. 0.01) c job
          end)
  | r -> Alcotest.failf "status: unexpected %s" (Json.to_string (P.response_to_json r))

let fetch_rows c job =
  let rows = ref [] in
  Client.stream c (P.Results job) (fun r ->
      match r with
      | P.Result_row { row; _ } ->
          rows := row :: !rows;
          `Continue
      | P.Results_end _ -> `Stop
      | r -> Alcotest.failf "results: unexpected %s" (Json.to_string (P.response_to_json r)));
  List.rev !rows

(* Wall-clock fields are the one nondeterministic part of a result row. *)
let strip_elapsed = function
  | Json.Obj fs -> Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_s") fs)
  | j -> j

let row_strings rows = List.map (fun r -> Json.to_string (strip_elapsed r)) rows

let direct_rows spec =
  let report = Sweep.run_ft ~workers:2 (P.jobs_of_spec spec) in
  Alcotest.(check int) "direct run has no failures" 0 (List.length report.Sweep.failed);
  List.map (fun o -> Json.to_string (strip_elapsed (Sweep.outcome_json o))) report.Sweep.completed

(* ------------------------------------------------------------------ *)
(* Server tests *)

let test_server_ping_and_errors () =
  with_server (fun sock ->
      Client.with_connect sock (fun c ->
          (match Client.rpc c P.Ping with
          | P.Pong { proto; _ } -> Alcotest.(check int) "protocol version" P.version proto
          | r -> Alcotest.failf "ping: %s" (Json.to_string (P.response_to_json r)));
          (match Client.rpc c (P.Status "job-99") with
          | P.Error { code = P.Unknown_job; _ } -> ()
          | r -> Alcotest.failf "unknown job: %s" (Json.to_string (P.response_to_json r)));
          (* the connection survives an error frame *)
          Client.send c P.Ping;
          ignore (Client.recv c)))

let test_server_rejects_foreign_version () =
  with_server (fun sock ->
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (ADDR_UNIX sock);
          let say line =
            ignore (Unix.write_substring fd line 0 (String.length line))
          in
          say "this is not json\n";
          say "{\"v\":99,\"req\":\"ping\"}\n";
          say (Frame.frame (P.request_to_json P.Ping));
          let r = Frame.reader () in
          let buf = Bytes.create 4096 in
          let rec collect acc =
            if List.length acc >= 3 then acc
            else
              match Unix.read fd buf 0 4096 with
              | 0 -> acc
              | n -> collect (acc @ Frame.feed r buf ~off:0 ~len:n)
          in
          let frames =
            List.map
              (fun l -> Result.get_ok (P.response_of_json (Result.get_ok (Json.of_string l))))
              (collect [])
          in
          match frames with
          | [ P.Error { code = P.Bad_request; _ };
              P.Error { code = P.Version_mismatch; _ };
              P.Pong _ ] ->
              ()
          | _ -> Alcotest.failf "unexpected reply sequence (%d frames)" (List.length frames)))

let test_server_concurrent_results_byte_identical () =
  let specs =
    [|
      small_spec ~trials:3 ~seed:42 ();
      { (small_spec ~trials:2 ~seed:7 ()) with P.family = Sweep.Watts_strogatz { k = 4; beta = 0.1 } };
      small_spec ~trials:2 ~seed:1000 ~latency:(Lat.Uniform (1, 6)) ();
    |]
  in
  let hold, release = gate () in
  with_server ~before_job:hold (fun sock ->
      (* N concurrent submitters *)
      let ids = Array.make (Array.length specs) "" in
      let submitters =
        Array.mapi
          (fun i spec ->
            Thread.create
              (fun () -> Client.with_connect sock (fun c -> ids.(i) <- submit_ok c spec))
              ())
          specs
      in
      Array.iter Thread.join submitters;
      Array.iteri
        (fun i id -> if id = "" then Alcotest.failf "submitter %d got no id" i)
        ids;
      (* plus a watcher following the first job while it runs *)
      let watched = ref [] in
      let watcher =
        Thread.create
          (fun () ->
            Client.with_connect sock (fun c ->
                Client.stream c (P.Watch ids.(0)) (fun r ->
                    watched := r :: !watched;
                    match r with P.Job_done _ -> `Stop | _ -> `Continue)))
          ()
      in
      Thread.delay 0.05;
      release ();
      Thread.join watcher;
      (match !watched with
      | P.Job_done s :: rest ->
          Alcotest.(check bool) "watched job is done" true (s.P.s_state = P.Done);
          Alcotest.(check bool)
            "watch streamed trial frames" true
            (List.exists (function P.Trial_done _ -> true | _ -> false) rest);
          Alcotest.(check bool)
            "watch streamed progress frames" true
            (List.exists (function P.Progress _ -> true | _ -> false) rest)
      | _ -> Alcotest.fail "watch stream did not end in job_done");
      (* every job's rows are byte-identical to a direct run_ft *)
      Client.with_connect sock (fun c ->
          Array.iteri
            (fun i id ->
              let s = wait_terminal c id in
              Alcotest.(check bool) (id ^ " done") true (s.P.s_state = P.Done);
              Alcotest.(check (list string))
                (Printf.sprintf "job %d rows match direct run" i)
                (direct_rows specs.(i))
                (row_strings (fetch_rows c id)))
            ids))

let test_server_backpressure_typed () =
  let hold, release = gate () in
  with_server ~capacity:1 ~before_job:hold (fun sock ->
      Client.with_connect sock (fun c ->
          let id = submit_ok c (small_spec ~trials:1 ()) in
          (* the held job fills the whole queue *)
          (match Client.rpc c (P.Submit (small_spec ~trials:1 ())) with
          | P.Error { code = P.Queue_full; _ } -> ()
          | r -> Alcotest.failf "expected queue_full, got %s" (Json.to_string (P.response_to_json r)));
          (match Client.rpc c P.Stats with
          | P.Server_stats { counters; _ } ->
              Alcotest.(check (option int))
                "rejection counted" (Some 1)
                (List.assoc_opt "serve.rejected" counters)
          | r -> Alcotest.failf "stats: %s" (Json.to_string (P.response_to_json r)));
          release ();
          ignore (wait_terminal c id);
          match Client.rpc c (P.Submit (small_spec ~trials:1 ())) with
          | P.Submitted _ -> ()
          | r -> Alcotest.failf "slot must free up, got %s" (Json.to_string (P.response_to_json r))))

let test_server_cancel_running () =
  let hold, release = gate () in
  with_server ~before_job:hold (fun sock ->
      Client.with_connect sock (fun c ->
          let id = submit_ok c (small_spec ~trials:2 ()) in
          (* claimed by the worker and held: cancellation is a flag the
             worker honours at its next check *)
          Thread.delay 0.05;
          (match Client.rpc c (P.Cancel id) with
          | P.Cancel_ok _ -> ()
          | r -> Alcotest.failf "cancel: %s" (Json.to_string (P.response_to_json r)));
          release ();
          let s = wait_terminal c id in
          Alcotest.(check bool) "cancelled" true (s.P.s_state = P.Cancelled)))

(* The optional scenario field: absent from the v1 wire when None (old
   clients and daemons interoperate unchanged), round-trips when
   present, and a malformed one is a typed decode error. *)
let test_spec_scenario_wire () =
  let with_scenario = small_spec ~scenario:drift_scenario () in
  (match P.spec_of_json (P.spec_to_json with_scenario) with
  | Ok s -> Alcotest.(check bool) "scenario preserved" true (s = with_scenario)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  let v1 = P.spec_to_json (small_spec ()) in
  (match v1 with
  | Json.Obj fields ->
      Alcotest.(check bool) "no scenario key on the v1 wire" false
        (List.mem_assoc "scenario" fields)
  | _ -> Alcotest.fail "spec must encode as an object");
  (match P.spec_of_json v1 with
  | Ok s -> Alcotest.(check bool) "v1 decodes to None" true (s.P.scenario = None)
  | Error e -> Alcotest.failf "v1 decode failed: %s" e);
  match v1 with
  | Json.Obj fields -> (
      match P.spec_of_json (Json.Obj (("scenario", Json.String "drift") :: fields)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed scenario accepted")
  | _ -> ()

(* End to end: a scenario-carrying submit runs on a live daemon. *)
let test_server_runs_scenario_job () =
  with_server (fun sock ->
      Client.with_connect sock (fun c ->
          let id = submit_ok c (small_spec ~scenario:drift_scenario ()) in
          let s = wait_terminal c id in
          Alcotest.(check bool) "scenario job done" true (s.P.s_state = P.Done)))

let test_server_validates_spec () =
  with_server (fun sock ->
      Client.with_connect sock (fun c ->
          match Client.rpc c (P.Submit { (small_spec ()) with P.trials = 0 }) with
          | P.Error { code = P.Bad_request; _ } -> ()
          | r -> Alcotest.failf "expected bad_request, got %s" (Json.to_string (P.response_to_json r))))

(* Drain on shutdown + journal replay: a daemon stopped with a held
   job must resurrect and finish it on restart, with the id preserved
   and never reissued. *)
let test_server_restart_resumes_queue () =
  let sock = sock_path () in
  let journal = Filename.temp_file "gossipd-journal" ".jsonl" in
  Sys.remove journal;
  let spec = small_spec ~trials:2 ~seed:77 () in
  let hold, release = gate () in
  let cfg = { (Server.default ~socket_path:sock) with Server.journal = Some journal } in
  (* phase 1: accept the job, shut down while the worker holds it *)
  let th = start_server { cfg with Server.before_job = Some hold } in
  let id =
    Client.with_connect sock (fun c ->
        let id = submit_ok c spec in
        ignore (Client.rpc c P.Shutdown);
        id)
  in
  release ();
  Thread.join th;
  Alcotest.(check string) "job id" "job-1" id;
  (* phase 2: a fresh daemon on the same journal finishes the queue *)
  let th = start_server cfg in
  Client.with_connect sock (fun c ->
      let s = wait_terminal c id in
      Alcotest.(check bool) "resumed to done" true (s.P.s_state = P.Done);
      Alcotest.(check (list string)) "rows match a direct run" (direct_rows spec)
        (row_strings (fetch_rows c id));
      let fresh = submit_ok c (small_spec ~trials:1 ()) in
      Alcotest.(check string) "retired ids are not reissued" "job-2" fresh;
      ignore (wait_terminal c fresh));
  stop_server sock th;
  Sys.remove journal

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "basic" `Quick test_frame_basic;
          Alcotest.test_case "torn" `Quick test_frame_torn;
          Alcotest.test_case "byte at a time" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "crlf and blanks" `Quick test_frame_crlf_blank;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
        ] );
      ("live", [ Alcotest.test_case "bounded mailbox" `Quick test_live_mailbox ]);
      ("codec", [ qtest request_roundtrip; qtest response_roundtrip ]);
      ( "jobq",
        [
          Alcotest.test_case "lifecycle" `Quick test_jobq_lifecycle;
          Alcotest.test_case "backpressure" `Quick test_jobq_backpressure;
          Alcotest.test_case "cancel and ids" `Quick test_jobq_cancel_and_ids;
          Alcotest.test_case "requeue head" `Quick test_jobq_requeue_head;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and errors" `Quick test_server_ping_and_errors;
          Alcotest.test_case "foreign frames" `Quick test_server_rejects_foreign_version;
          Alcotest.test_case "concurrent clients, byte-identical results" `Quick
            test_server_concurrent_results_byte_identical;
          Alcotest.test_case "typed backpressure" `Quick test_server_backpressure_typed;
          Alcotest.test_case "cancel running job" `Quick test_server_cancel_running;
          Alcotest.test_case "spec validation" `Quick test_server_validates_spec;
          Alcotest.test_case "scenario wire format" `Quick test_spec_scenario_wire;
          Alcotest.test_case "scenario job end to end" `Quick test_server_runs_scenario_job;
          Alcotest.test_case "restart resumes queue" `Quick test_server_restart_resumes_queue;
        ] );
    ]
