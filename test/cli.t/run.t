The CLI is deterministic given a seed, so its output can be locked down
exactly.  These scenarios cover every subcommand.

Graph analysis (Definitions 1-2):

  $ gossip-cli analyze --family dumbbell --size 4 --bridge 6
  graph(n=8, m=13, Δ=4, ℓmax=6)
  connected: true
  weighted diameter D = 8, hop diameter = 3, radius = 7
  weighted conductance phi* = 0.07692 at critical latency ell* = 6
  latency profile (Definition 1):
    phi_1     = 0.00000   phi/ell = 0.000000
    phi_6     = 0.07692   phi/ell = 0.012821
  Theorem 12 push-pull bound: 162 rounds

Running an algorithm:

  $ gossip-cli run --algorithm push-pull --family clique --nodes 16 --seed 5
  push-pull broadcast: 5 rounds

  $ gossip-cli run --algorithm path-discovery --family cycle --nodes 9
  Path Discovery: 88 rounds, k_final = 2, success = true

Bounded in-degree (Section 7):

  $ gossip-cli run --algorithm push-pull --family star --nodes 16 --capacity 1
  push-pull broadcast (bounded in-degree): 16 rounds
  rejected requests: 210

The guessing game (Lemmas 4-5):

  $ gossip-cli game --side 16 --strategy sequential-scan --seed 2
  Guessing(2m = 32, |T| = 1), strategy sequential-scan
  solved in 2 rounds with 64 guesses

The Lemma 3 reduction:

  $ gossip-cli reduce --side 12 --prob 0.2 --seed 3
  Lemma 3 simulation on G(P) (m = 12, |T| = 25):
    game solved at round 12, local broadcast at round 17
    guesses submitted: 224; Lemma 3 holds: true

Gadget construction (Figure 1):

  $ gossip-cli gadget --which g-p --side 4 --phi 0.3 --seed 4
  bipartite gadget: |L| = |R| = 4, n = 8, m = 22 edges
    cross edges: 1 fast (thick/red in Fig. 1), 15 slow at latency 8
    max degree 7, weighted diameter 16
  G(P)
    graph(n=8, m=22, Δ=7, ℓmax=8)
    weighted diameter 16, max degree 7
    phi* = 0.5455 at ell* = 8

Multicore sweep over the flat-array runtime (deterministic per job
regardless of the worker count):

  $ gossip-cli sweep --family ring-of-cliques -n 96 --size 6 --bridge 4 --trials 3 --jobs 2 --seed 7
  ring-of-cliques n=96 push-pull: 3/3 trials completed
    rounds: mean 56.3, median 56.0, min 54, max 59 over 3 runs

Spanner construction (Appendix D):

  $ gossip-cli spanner --family clique --nodes 24 --stretch-k 3 --seed 6
  Baswana-Sen spanner: 128/276 edges, max out-degree 8, stretch 2.00 (bound 5)

Telemetry report over a golden fixture (the JSONL schema of DESIGN.md;
the bad line is counted, not fatal):

  $ gossip-cli report fixture.jsonl
  telemetry report: fixture.jsonl
    events: 8 (parse errors: 1)
    event counts:
      meta: 1
      job: 3
      counter: 1
      gauge: 1
      hist: 1
      trace: 1
    jobs: 3 total, 2 completed
      rounds: mean=56.5 p50=56.5 p95=58.8 max=59
      elapsed_s: mean=0.583333 p50=0.500000 p95=0.950000 max=1.000000
    counters:
      pool.worker0.jobs = 3
    gauges:
      wheel.inflight.max = 77
    histograms:
      pool.job_us: count=3 sum=1750000 mean=583333.3
    informed: 96 at round 53

Run telemetry: the engine's per-round counters and the informed-set
trace ring land in a JSONL file, fully seeded and reproducible:

  $ gossip-cli run --algorithm push-pull --family clique --nodes 16 --seed 5 --telemetry tel.jsonl
  push-pull broadcast: 5 rounds
  telemetry written to tel.jsonl

  $ gossip-cli report tel.jsonl
  telemetry report: tel.jsonl
    events: 29 (parse errors: 0)
    event counts:
      meta: 1
      hist: 2
      ring: 1
      trace: 25
    histograms:
      engine.round.deliveries: count=5 sum=128 mean=25.6
      engine.round.initiations: count=5 sum=80 mean=16.0
    informed: 16 at round 4

Only the plain push-pull path is instrumented:

  $ gossip-cli run --algorithm flood --family clique --nodes 8 --telemetry ignored.jsonl
  note: --telemetry applies to plain push-pull only; ignored
  round-robin flooding: 4 rounds

Sweep telemetry carries wall-clock measurements, so only the
deterministic report lines are locked here:

  $ gossip-cli sweep --family ring-of-cliques -n 96 --size 6 --bridge 4 --trials 3 --jobs 1 --seed 7 --telemetry t.jsonl
  ring-of-cliques n=96 push-pull: 3/3 trials completed
    rounds: mean 56.3, median 56.0, min 54, max 59 over 3 runs
  telemetry written to t.jsonl

  $ gossip-cli report t.jsonl | grep -E "events:|meta:|job:|hist:|counter:|jobs:|rounds:"
    events: 10 (parse errors: 0)
      meta: 1
      job: 3
      counter: 4
      hist: 2
    jobs: 3 total, 3 completed
      rounds: mean=56.3 p50=56.0 p95=58.7 max=59

Fault tolerance: an injected per-job crash costs one result, not the
run.  The other jobs complete, the failure is reported with its seed
and attempt count, and the exit code is non-zero:

  $ gossip-cli sweep --family ring-of-cliques -n 96 --size 6 --bridge 4 --trials 3 --jobs 1 --seed 7 --inject-crash 7926 --retries 1 --checkpoint crash.ck --out crash.json --telemetry ft.jsonl
  ring-of-cliques n=96 push-pull: 2/3 trials completed, 1 failed
    rounds: mean 55.0, median 55.0, min 54, max 56 over 2 runs
  FAILED ring-of-cliques n=96 seed=7926 push-pull after 2 attempts: Failure("injected crash (seed 7926)")
  results written to crash.json
  telemetry written to ft.jsonl
  [1]

The checkpoint records two finished jobs and one failure; the summary
JSON and the telemetry JSONL carry the error too:

  $ grep -c '"ev":"ckpt_job"' crash.ck
  2
  $ grep -c '"ev":"ckpt_fail"' crash.ck
  1
  $ grep -c '"ev":"job_error"' ft.jsonl
  1
  $ grep -c '"ev":"retry"' ft.jsonl
  1
  $ grep -o '"failed":[0-9]*' crash.json
  "failed":1

Checkpoint/resume: kill a sweep after two of three jobs (simulated by
truncating the checkpoint), resume it, and the final JSON is identical
to the uninterrupted run on every deterministic field (elapsed_s is
wall-clock, so it is stripped before comparing):

  $ gossip-cli sweep --family ring-of-cliques -n 96 --size 6 --bridge 4 --trials 3 --jobs 1 --seed 7 --checkpoint full.ck --out full.json
  ring-of-cliques n=96 push-pull: 3/3 trials completed
    rounds: mean 56.3, median 56.0, min 54, max 59 over 3 runs
  results written to full.json
  $ head -n 2 full.ck > part.ck
  $ gossip-cli sweep --family ring-of-cliques -n 96 --size 6 --bridge 4 --trials 3 --jobs 1 --seed 7 --checkpoint part.ck --resume --out resumed.json
  resume: 2/3 jobs already recorded in the checkpoint
  ring-of-cliques n=96 push-pull: 3/3 trials completed
    rounds: mean 56.3, median 56.0, min 54, max 59 over 3 runs
  results written to resumed.json

The resumed checkpoint holds all three records again:

  $ grep -c '"ev":"ckpt_job"' part.ck
  3
  $ strip() { sed -E 's/"(mean_)?elapsed_s":[0-9.eE+-]+//g' "$1"; }
  $ strip full.json > full.stripped; strip resumed.json > resumed.stripped
  $ cmp full.stripped resumed.stripped && echo identical
  identical
